//! Local move validity: the five-neighbor rule and Properties 1 & 2.
//!
//! Section 3.1 of the paper defines two structural properties of an adjacent
//! location pair `(ℓ, ℓ′)` that make a particle move from `ℓ` to `ℓ′` safe:
//!
//! * **Property 1.** `|S| ∈ {1, 2}` — at least one of the two common
//!   neighbors of `ℓ` and `ℓ′` is occupied — and every particle in
//!   `N(ℓ ∪ ℓ′)` is connected to a particle of `S` by a path *through*
//!   `N(ℓ ∪ ℓ′)`.
//! * **Property 2.** `|S| = 0`, both `ℓ` and `ℓ′` have at least one
//!   neighbor, all particles in `N(ℓ) \ {ℓ′}` are connected by paths within
//!   that set, and likewise for `N(ℓ′) \ {ℓ}`.
//!
//! Together with Condition (1) of Algorithm `M` (`e ≠ 5`, preventing hole
//! creation at the vacated site), these conditions preserve connectivity
//! (Lemma 3.1) and hole-freeness (Lemma 3.2), and are symmetric in `ℓ`/`ℓ′`
//! so every move is reversible (Lemma 3.9).
//!
//! Because `N(ℓ ∪ ℓ′)` is an induced 8-cycle ([`sops_lattice::PairRing`]),
//! both properties are pure functions of an 8-bit occupancy mask, and are
//! precomputed here as 256-entry lookup tables built at compile time. The
//! [`mod@reference`] module implements the textual definitions directly on the
//! lattice with BFS; the test suite (and a Criterion bench) checks that the
//! table and the reference agree on every mask and on random configurations.

use sops_lattice::{Direction, TriPoint};

/// Bit positions of the two shared neighbors in the ring mask.
const SHARED_MASK: u8 = 0b0001_0001;

const fn prop1_of_mask(mask: u8) -> bool {
    // S = occupied shared neighbors; Property 1 needs |S| >= 1.
    let shared = mask & SHARED_MASK;
    if shared == 0 {
        return false;
    }
    // Flood occupied ring sites outward from S along the 8-cycle; Property 1
    // holds iff every occupied site is reached.
    let mut reach = shared;
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < 8 {
            let bit = 1u8 << i;
            if mask & bit != 0 && reach & bit == 0 {
                let prev = 1u8 << ((i + 7) % 8);
                let next = 1u8 << ((i + 1) % 8);
                if reach & prev != 0 || reach & next != 0 {
                    reach |= bit;
                    changed = true;
                }
            }
            i += 1;
        }
    }
    reach == mask
}

const fn arc_contiguous_nonempty(bits: u8) -> bool {
    // `bits` holds three consecutive ring sites as a 3-bit value; they form a
    // path graph, so the occupied subset is connected iff it is a contiguous
    // run: anything except 000 and 101.
    bits != 0b000 && bits != 0b101
}

const fn prop2_of_mask(mask: u8) -> bool {
    if mask & SHARED_MASK != 0 {
        return false;
    }
    // With both shared sites empty, N(ℓ)\{ℓ′} can only be occupied at ring
    // indices 1..=3 and N(ℓ′)\{ℓ} at ring indices 5..=7.
    let from_side = (mask >> 1) & 0b111;
    let to_side = (mask >> 5) & 0b111;
    arc_contiguous_nonempty(from_side) && arc_contiguous_nonempty(to_side)
}

/// Lookup table: `PROPERTY1[mask]` is Property 1 for that ring occupancy.
pub static PROPERTY1: [bool; 256] = {
    let mut table = [false; 256];
    let mut m = 0usize;
    while m < 256 {
        table[m] = prop1_of_mask(m as u8);
        m += 1;
    }
    table
};

/// Lookup table: `PROPERTY2[mask]` is Property 2 for that ring occupancy.
pub static PROPERTY2: [bool; 256] = {
    let mut table = [false; 256];
    let mut m = 0usize;
    while m < 256 {
        table[m] = prop2_of_mask(m as u8);
        m += 1;
    }
    table
};

/// The outcome of evaluating Algorithm `M`'s structural move conditions.
///
/// Produced by [`crate::ParticleSystem::check_move`]. The Metropolis filter
/// (Condition 3 of Step 6) is applied by the chain itself; this type captures
/// Conditions (1) and (2) plus the neighbor counts the filter needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveValidity {
    /// The ring occupancy mask around `(ℓ, ℓ′)`.
    pub mask: u8,
    /// Whether the destination `ℓ′` is already occupied (no move possible).
    pub target_occupied: bool,
    /// `e = |N(ℓ)|`: occupied neighbors of the origin (excluding `ℓ′`,
    /// which must be empty for a move).
    pub e_from: u8,
    /// `e′ = |N(ℓ′)|`: neighbors the particle would have after moving
    /// (excluding itself).
    pub e_to: u8,
    /// Property 1 of the pair.
    pub property1: bool,
    /// Property 2 of the pair.
    pub property2: bool,
}

impl MoveValidity {
    /// Evaluates the conditions from a ring occupancy mask.
    #[inline]
    #[must_use]
    pub fn from_mask(mask: u8, target_occupied: bool) -> MoveValidity {
        MoveValidity {
            mask,
            target_occupied,
            e_from: (mask & 0b0001_1111).count_ones() as u8,
            e_to: (mask & 0b1111_0001).count_ones() as u8,
            property1: PROPERTY1[mask as usize],
            property2: PROPERTY2[mask as usize],
        }
    }

    /// Condition (1) of Step 6: moving is forbidden when `e = 5`, which
    /// would leave a hole at the vacated location.
    #[inline]
    #[must_use]
    pub fn five_neighbor_blocked(&self) -> bool {
        self.e_from == 5
    }

    /// Whether the move satisfies all structural conditions of Algorithm `M`
    /// (target empty, `e ≠ 5`, and Property 1 or Property 2).
    ///
    /// A structurally valid move still passes through the Metropolis filter
    /// `q < λ^(e′ − e)` before being executed.
    #[inline]
    #[must_use]
    pub fn is_structurally_valid(&self) -> bool {
        !self.target_occupied && !self.five_neighbor_blocked() && (self.property1 || self.property2)
    }

    /// The edge-count change `e′ − e` the move would cause.
    #[inline]
    #[must_use]
    pub fn edge_delta(&self) -> i32 {
        self.e_to as i32 - self.e_from as i32
    }
}

/// Upper bound on the size of a move's revalidation neighborhood (the union
/// of two adjacent radius-2 discs holds 24 sites).
const REVAL_MAX: usize = 24;

/// The nine sites the acceptance probability of pair `(q, q + d)` reads,
/// as offsets from `q`: the eight [`sops_lattice::PairRing`] sites plus the
/// target `q + d` itself. Mirrors the ring geometry of
/// `sops_lattice::PairRing::new` (cross-checked in this module's tests via
/// the coverage test below).
const fn dependency_offsets(d: Direction) -> [(i32, i32); 9] {
    let (dx, dy) = d.offset();
    [
        d.rot60(1).offset(),
        d.rot60(2).offset(),
        d.rot60(3).offset(),
        d.rot60(4).offset(),
        d.rot60(5).offset(),
        (dx + d.rot60(5).offset().0, dy + d.rot60(5).offset().1),
        (2 * dx, 2 * dy),
        (dx + d.rot60(1).offset().0, dy + d.rot60(1).offset().1),
        (dx, dy),
    ]
}

/// One revalidation-plan entry: a site offset from `ℓ` plus the bitmask of
/// directions whose pair at that site reads a changed site.
pub type PlanEntry = ((i32, i32), u8);

const fn reval_plan(mv: Direction) -> ([PlanEntry; REVAL_MAX], usize) {
    let (mx, my) = mv.offset();
    let mut out = [((0i32, 0i32), 0u8); REVAL_MAX];
    let mut len = 0usize;
    let mut oy = -3i32;
    while oy <= 3 {
        let mut ox = -3i32;
        while ox <= 3 {
            // Directions whose dependency set, anchored at this offset,
            // contains ℓ = (0, 0) or ℓ′ = (mx, my).
            let mut dmask = 0u8;
            let mut di = 0;
            while di < 6 {
                let deps = dependency_offsets(Direction::ALL[di]);
                let mut k = 0;
                while k < 9 {
                    let (sx, sy) = (ox + deps[k].0, oy + deps[k].1);
                    if (sx == 0 && sy == 0) || (sx == mx && sy == my) {
                        dmask |= 1 << di;
                        break;
                    }
                    k += 1;
                }
                di += 1;
            }
            if dmask != 0 {
                out[len] = ((ox, oy), dmask);
                len += 1;
            }
            ox += 1;
        }
        oy += 1;
    }
    (out, len)
}

static REVALIDATION_PLANS: [([PlanEntry; REVAL_MAX], usize); 6] = [
    reval_plan(Direction::E),
    reval_plan(Direction::NE),
    reval_plan(Direction::NW),
    reval_plan(Direction::W),
    reval_plan(Direction::SW),
    reval_plan(Direction::SE),
];

/// The revalidation plan of a move from `ℓ` to `ℓ′ = ℓ + dir`: the sites
/// (as offsets from `ℓ`) whose particles' Algorithm-`M` acceptance
/// probabilities the move can change, each with the bitmask (bit `i` =
/// `Direction::from_index(i)`) of the directions whose pair actually reads
/// one of the two changed sites.
///
/// A pair `(P, d)` with `P` at `q` is accepted with probability
/// `min(1, λ^(e′−e))` gated by the five-neighbor rule and Properties 1/2 —
/// all functions of the occupancy of the [`sops_lattice::PairRing`] around
/// `(q, q + d)` plus the target `q + d`, every site of which lies within
/// graph distance 2 of `q`. A move changes occupancy only at `ℓ` and `ℓ′`,
/// so `(P, d)` can change only if its dependency set touches one of them:
/// the 24 offsets of this plan (the union of the two radius-2 discs,
/// including `ℓ` and `ℓ′` themselves), restricted per site to the touching
/// directions. This is the revalidation hook the rejection-free sampler in
/// `sops-core` uses to keep its acceptance-mass table incremental.
#[must_use]
pub fn revalidation_plan(dir: Direction) -> &'static [PlanEntry] {
    let (ref plan, len) = REVALIDATION_PLANS[dir.index()];
    &plan[..len]
}

/// The sites of [`revalidation_plan`] without the direction masks.
pub fn revalidation_offsets(dir: Direction) -> impl Iterator<Item = (i32, i32)> {
    revalidation_plan(dir).iter().map(|&(offset, _)| offset)
}

/// Bit positions inside a center-anchored 5×5 window
/// ([`crate::ParticleSystem::window25`]) of the eight
/// [`sops_lattice::PairRing`] sites plus the move target, per direction.
/// Every ring site lies within graph distance 2 of the center, so the
/// whole set fits the window.
static RING25_POSITIONS: [([u8; 8], u8); 6] = [
    ring25_positions(Direction::E),
    ring25_positions(Direction::NE),
    ring25_positions(Direction::NW),
    ring25_positions(Direction::W),
    ring25_positions(Direction::SW),
    ring25_positions(Direction::SE),
];

const fn ring25_positions(dir: Direction) -> ([u8; 8], u8) {
    let deps = dependency_offsets(dir);
    let mut ring = [0u8; 8];
    let mut i = 0;
    while i < 8 {
        let (ox, oy) = deps[i];
        ring[i] = ((oy + 2) * 5 + (ox + 2)) as u8;
        i += 1;
    }
    let (tx, ty) = deps[8];
    (ring, ((ty + 2) * 5 + (tx + 2)) as u8)
}

/// The six neighbor bits of the center of a 5×5 window (bit 12).
pub const WINDOW25_NEIGHBORS: u32 = {
    let mut mask = 0u32;
    let mut i = 0;
    while i < 6 {
        let (dx, dy) = Direction::ALL[i].offset();
        mask |= 1 << ((dy + 2) * 5 + (dx + 2));
        i += 1;
    }
    mask
};

/// Evaluates the move conditions for the center particle of a 5×5 occupancy
/// window ([`crate::ParticleSystem::window25`]) moving in `dir`, without
/// touching the grid again: one window gather answers all six directions.
///
/// Equivalent to [`crate::ParticleSystem::check_move`] at the window's
/// center (verified exhaustively in this module's tests).
#[inline]
#[must_use]
pub fn check_move_in_window25(window: u32, dir: Direction) -> MoveValidity {
    let (ring, target) = RING25_POSITIONS[dir.index()];
    let mut mask = 0u8;
    for (i, &pos) in ring.iter().enumerate() {
        mask |= ((window >> pos & 1) as u8) << i;
    }
    MoveValidity::from_mask(mask, window >> target & 1 != 0)
}

/// First-principles implementations of the paper's definitions, used to
/// cross-validate the lookup tables.
///
/// These evaluate the textual definitions of Properties 1 and 2 directly on
/// lattice points with BFS, with no reliance on the ring indexing or on the
/// induced-8-cycle fact.
pub mod reference {
    use super::*;

    /// All sites of `N(ℓ ∪ ℓ′)`, unordered.
    fn pair_neighborhood(from: TriPoint, to: TriPoint) -> Vec<TriPoint> {
        let mut sites: Vec<TriPoint> = from.neighbors().chain(to.neighbors()).collect();
        sites.retain(|p| *p != from && *p != to);
        sites.sort();
        sites.dedup();
        sites
    }

    /// Is the occupied subset of `sites` connected, and is every occupied
    /// site reachable from some site of `seeds`, using lattice adjacency
    /// restricted to occupied members of `sites`?
    fn all_reachable_from(
        occupied: &dyn Fn(TriPoint) -> bool,
        sites: &[TriPoint],
        seeds: &[TriPoint],
    ) -> bool {
        let occupied_sites: Vec<TriPoint> =
            sites.iter().copied().filter(|p| occupied(*p)).collect();
        let mut reached: Vec<TriPoint> = seeds.to_vec();
        let mut frontier = reached.clone();
        while let Some(p) = frontier.pop() {
            for q in p.neighbors() {
                if occupied_sites.contains(&q) && !reached.contains(&q) {
                    reached.push(q);
                    frontier.push(q);
                }
            }
        }
        occupied_sites.iter().all(|p| reached.contains(p))
    }

    /// Property 1, from the definition in Section 3.1.
    pub fn property1(occupied: &dyn Fn(TriPoint) -> bool, from: TriPoint, dir: Direction) -> bool {
        let to = from + dir;
        let shared: Vec<TriPoint> = from
            .shared_neighbors(to)
            .into_iter()
            .filter(|p| occupied(*p))
            .collect();
        if shared.is_empty() {
            return false;
        }
        let sites = pair_neighborhood(from, to);
        all_reachable_from(occupied, &sites, &shared)
    }

    /// Property 2, from the definition in Section 3.1.
    pub fn property2(occupied: &dyn Fn(TriPoint) -> bool, from: TriPoint, dir: Direction) -> bool {
        let to = from + dir;
        let shared_occupied = from.shared_neighbors(to).into_iter().any(occupied);
        if shared_occupied {
            return false;
        }
        let side_ok = |center: TriPoint, exclude: TriPoint| {
            let sites: Vec<TriPoint> = center.neighbors().filter(|p| *p != exclude).collect();
            let occupied_sites: Vec<TriPoint> =
                sites.iter().copied().filter(|p| occupied(*p)).collect();
            match occupied_sites.first() {
                None => false,
                Some(&seed) => all_reachable_from(occupied, &sites, &[seed]),
            }
        };
        side_ok(from, to) && side_ok(to, from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_lattice::PairRing;

    /// Realizes a ring mask as a concrete occupancy predicate.
    fn mask_world(mask: u8, from: TriPoint, dir: Direction) -> impl Fn(TriPoint) -> bool {
        let ring = PairRing::new(from, dir);
        let occupied: Vec<TriPoint> = (0..8)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| ring.site(i))
            .collect();
        move |p: TriPoint| occupied.contains(&p)
    }

    #[test]
    fn tables_match_reference_for_all_masks_and_directions() {
        for dir in Direction::ALL {
            let from = TriPoint::ORIGIN;
            for mask in 0u16..256 {
                let mask = mask as u8;
                let world = mask_world(mask, from, dir);
                assert_eq!(
                    PROPERTY1[mask as usize],
                    reference::property1(&world, from, dir),
                    "Property 1 mismatch at mask {mask:#010b}, dir {dir}"
                );
                assert_eq!(
                    PROPERTY2[mask as usize],
                    reference::property2(&world, from, dir),
                    "Property 2 mismatch at mask {mask:#010b}, dir {dir}"
                );
            }
        }
    }

    #[test]
    fn properties_are_mutually_exclusive() {
        // Property 1 requires an occupied shared site; Property 2 requires
        // both shared sites empty.
        for mask in 0u16..256 {
            assert!(
                !(PROPERTY1[mask as usize] && PROPERTY2[mask as usize]),
                "mask {mask:#010b}"
            );
        }
    }

    #[test]
    fn properties_are_symmetric_under_pair_reversal() {
        // Reversing the move direction re-indexes the ring: site i of
        // (ℓ, d) is site (i + 4) % 8 of (ℓ′, −d) — verified geometrically
        // here — and both properties must be invariant (Lemma 3.9 requires
        // symmetry).
        let from = TriPoint::ORIGIN;
        for dir in Direction::ALL {
            let to = from + dir;
            let forward = PairRing::new(from, dir);
            let backward = PairRing::new(to, dir.opposite());
            for i in 0..8 {
                assert_eq!(forward.site(i), backward.site((i + 4) % 8));
            }
        }
        for mask in 0u16..256 {
            let mask = mask as u8;
            let reversed = mask.rotate_left(4);
            assert_eq!(
                PROPERTY1[mask as usize], PROPERTY1[reversed as usize],
                "P1 asymmetric at {mask:#010b}"
            );
            assert_eq!(
                PROPERTY2[mask as usize], PROPERTY2[reversed as usize],
                "P2 asymmetric at {mask:#010b}"
            );
        }
    }

    #[test]
    fn known_property1_cases() {
        // Only one shared neighbor occupied: the particle pivots around it.
        assert!(PROPERTY1[0b0000_0001]);
        assert!(PROPERTY1[0b0001_0000]);
        // Both shared occupied, nothing else.
        assert!(PROPERTY1[0b0001_0001]);
        // A particle at ring index 2 disconnected from the shared site at 0
        // (index 1 empty) violates Property 1.
        assert!(!PROPERTY1[0b0000_0101]);
        // ...but connecting through index 1 restores it.
        assert!(PROPERTY1[0b0000_0111]);
        // Empty ring: no shared particle.
        assert!(!PROPERTY1[0b0000_0000]);
        // Full ring is fine (everything connected).
        assert!(PROPERTY1[0b1111_1111]);
    }

    #[test]
    fn known_property2_cases() {
        // One neighbor behind (index 2) and one ahead (index 6).
        assert!(PROPERTY2[0b0100_0100]);
        // Contiguous runs on both sides.
        assert!(PROPERTY2[0b0110_0110]);
        // Gap on the from side ({1,3} non-contiguous).
        assert!(!PROPERTY2[0b0100_1010]);
        // Missing a side entirely.
        assert!(!PROPERTY2[0b0000_0100]);
        // Any occupied shared site disqualifies Property 2.
        assert!(!PROPERTY2[0b0100_0101]);
    }

    #[test]
    fn move_validity_counts_and_deltas() {
        // Ring sites 0..=4 are N(ℓ)\{ℓ′}; 4..=7 and 0 are N(ℓ′)\{ℓ}.
        let v = MoveValidity::from_mask(0b0000_0111, false);
        assert_eq!(v.e_from, 3);
        assert_eq!(v.e_to, 1);
        assert_eq!(v.edge_delta(), -2);
        assert!(!v.five_neighbor_blocked());

        let v = MoveValidity::from_mask(0b0001_1111, false);
        assert_eq!(v.e_from, 5);
        assert!(v.five_neighbor_blocked());
        assert!(!v.is_structurally_valid());

        let v = MoveValidity::from_mask(0b0000_0001, true);
        assert!(!v.is_structurally_valid(), "occupied target blocks moves");
    }

    #[test]
    fn revalidation_plan_covers_exactly_the_dependent_pairs() {
        // Pair (q, d) depends on the move (ℓ → ℓ′) iff its ring or target
        // touches {ℓ, ℓ′}, or q is the mover's new location ℓ′ (where the
        // ring always contains ℓ as a neighbor or target, verified here).
        // The plan must list exactly those pairs: the KMC sampler
        // revalidates nothing else after an accepted move.
        let l = TriPoint::ORIGIN;
        for mv in Direction::ALL {
            let lp = l + mv;
            let plan = revalidation_plan(mv);
            for x in -5..=5 {
                for y in -5..=5 {
                    let q = TriPoint::new(x, y);
                    let entry = plan.iter().find(|&&(o, _)| o == (x, y));
                    for d in Direction::ALL {
                        let ring = PairRing::new(q, d);
                        let depends = q + d == l
                            || q + d == lp
                            || (0..8).any(|i| ring.site(i) == l || ring.site(i) == lp);
                        let planned = entry.is_some_and(|&(_, dmask)| dmask >> d.index() & 1 != 0);
                        assert_eq!(
                            depends, planned,
                            "move {mv}: pair ({q}, {d}) dependency mismatch"
                        );
                        if q == lp {
                            assert!(depends, "the mover's pairs must all be planned");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn window25_check_move_matches_grid_check_move() {
        use crate::ParticleSystem;

        // Random configurations: the single-gather evaluation must agree
        // with the grid-backed check_move at every particle and direction.
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        for _ in 0..40 {
            let mut points = vec![TriPoint::ORIGIN];
            while points.len() < 30 {
                let base = points[next() as usize % points.len()];
                let p = base + Direction::ALL[next() as usize % 6];
                if !points.contains(&p) {
                    points.push(p);
                }
            }
            let sys = ParticleSystem::new(points.clone()).unwrap();
            for &p in &points {
                let w = sys.window25(p);
                assert_eq!(
                    (w & WINDOW25_NEIGHBORS).count_ones() as u8,
                    sys.neighbor_count(p),
                    "neighbor count at {p}"
                );
                for dir in Direction::ALL {
                    assert_eq!(
                        check_move_in_window25(w, dir),
                        sys.check_move(p, dir),
                        "{p} {dir}"
                    );
                }
            }
        }
    }

    #[test]
    fn revalidation_offsets_are_tight_and_distinct() {
        for mv in Direction::ALL {
            let (dx, dy) = mv.offset();
            let offsets: Vec<(i32, i32)> = revalidation_offsets(mv).collect();
            // The union of two adjacent radius-2 discs: 19 + 19 − 14 = 24.
            assert_eq!(offsets.len(), 24, "{mv}");
            let mut sorted = offsets.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), offsets.len(), "{mv}: duplicate offsets");
            for &(ox, oy) in &offsets {
                let near_l = TriPoint::ORIGIN.distance(TriPoint::new(ox, oy)) <= 2;
                let near_lp = TriPoint::new(dx, dy).distance(TriPoint::new(ox, oy)) <= 2;
                assert!(near_l || near_lp, "{mv}: offset ({ox}, {oy}) too far");
            }
        }
    }

    #[test]
    fn structural_validity_requires_some_property() {
        let v = MoveValidity::from_mask(0b0000_0000, false);
        assert!(!v.property1 && !v.property2);
        assert!(!v.is_structurally_valid());
    }
}
