//! The retained hash-map-backed configuration model, kept as a
//! differential-testing oracle for the grid-backed [`crate::ParticleSystem`].
//!
//! [`RefSystem`] is the pre-grid implementation of the configuration layer:
//! a [`TriMap`] from location to particle id, per-site occupancy probes for
//! neighbor counts and ring masks, and a [`TriSet`]-based exterior flood
//! fill for hole counting. It is deliberately simple and independent of
//! `sops_lattice::TileGrid` — the property tests in this crate drive random
//! valid move sequences through both implementations and require identical
//! occupancy, edge counts, perimeters, hole counts and canonical keys.

use sops_lattice::{BoundingBox, Direction, PairRing, TriMap, TriPoint, TriSet};

use crate::canonical::{canonical_key, CanonicalKey};
use crate::moves::MoveValidity;
use crate::{ParticleId, SystemError};

/// Hash-map-backed twin of [`crate::ParticleSystem`] (see the
/// [module docs](self)).
#[derive(Clone, Debug)]
pub struct RefSystem {
    occ: TriMap<TriPoint, ParticleId>,
    pos: Vec<TriPoint>,
    edges: u64,
}

impl RefSystem {
    /// Builds a configuration from particle locations.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ParticleSystem::new`].
    pub fn new(points: impl IntoIterator<Item = TriPoint>) -> Result<RefSystem, SystemError> {
        let pos: Vec<TriPoint> = points.into_iter().collect();
        if pos.is_empty() {
            return Err(SystemError::Empty);
        }
        let mut occ: TriMap<TriPoint, ParticleId> = TriMap::default();
        for (id, p) in pos.iter().enumerate() {
            if occ.insert(*p, id).is_some() {
                return Err(SystemError::DuplicateLocation(*p));
            }
        }
        let mut sys = RefSystem { occ, pos, edges: 0 };
        sys.edges = sys.recount_edges();
        Ok(sys)
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` when empty (never, through the public constructor).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The configuration edge count `e(σ)`.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// `true` if `p` is occupied.
    #[must_use]
    pub fn is_occupied(&self, p: TriPoint) -> bool {
        self.occ.contains_key(&p)
    }

    /// The particle occupying `p`, if any.
    #[must_use]
    pub fn particle_at(&self, p: TriPoint) -> Option<ParticleId> {
        self.occ.get(&p).copied()
    }

    /// The location of particle `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    #[must_use]
    pub fn position(&self, id: ParticleId) -> TriPoint {
        self.pos[id]
    }

    /// The number of occupied neighbors of `p` (per-site hash probes).
    #[must_use]
    pub fn neighbor_count(&self, p: TriPoint) -> u8 {
        let mut count = 0u8;
        for d in Direction::ALL {
            if self.is_occupied(p + d) {
                count += 1;
            }
        }
        count
    }

    /// Move validity via [`PairRing::occupancy_mask`] over hash probes.
    #[must_use]
    pub fn check_move(&self, from: TriPoint, dir: Direction) -> MoveValidity {
        let to = from + dir;
        let target_occupied = self.is_occupied(to);
        let ring = PairRing::new(from, dir);
        let mask = ring.occupancy_mask(|p| self.is_occupied(p));
        MoveValidity::from_mask(mask, target_occupied)
    }

    /// Moves particle `id` one step in `dir` with the pre-grid update
    /// sequence (remove, recount both neighborhoods, insert).
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::ParticleSystem::move_particle`].
    pub fn move_particle(&mut self, id: ParticleId, dir: Direction) -> Result<(), SystemError> {
        let from = *self.pos.get(id).ok_or(SystemError::NoSuchParticle(id))?;
        let to = from + dir;
        if self.is_occupied(to) {
            return Err(SystemError::TargetOccupied(to));
        }
        self.occ.remove(&from);
        let e_from = self.neighbor_count(from) as u64;
        let e_to = self.neighbor_count(to) as u64;
        self.edges = self.edges - e_from + e_to;
        self.occ.insert(to, id);
        self.pos[id] = to;
        Ok(())
    }

    /// Recounts edges from scratch.
    #[must_use]
    pub fn recount_edges(&self) -> u64 {
        let mut twice = 0u64;
        for &p in &self.pos {
            twice += self.neighbor_count(p) as u64;
        }
        twice / 2
    }

    /// The number of holes, by hash-set exterior flood fill.
    #[must_use]
    pub fn hole_count(&self) -> usize {
        let bbox = BoundingBox::of(self.pos.iter().copied())
            .expect("reference systems are non-empty")
            .expanded(1);
        let mut exterior: TriSet<TriPoint> = TriSet::default();
        let mut stack: Vec<TriPoint> = Vec::new();
        for p in bbox.iter() {
            if bbox.on_frame(p) && exterior.insert(p) {
                stack.push(p);
            }
        }
        while let Some(p) = stack.pop() {
            for q in p.neighbors() {
                if bbox.contains(q) && !self.is_occupied(q) && exterior.insert(q) {
                    stack.push(q);
                }
            }
        }
        let mut hole_cells: Vec<TriPoint> = bbox
            .iter()
            .filter(|p| !self.is_occupied(*p) && !exterior.contains(p))
            .collect();
        hole_cells.sort();
        let cells: TriSet<TriPoint> = hole_cells.iter().copied().collect();
        let mut visited: TriSet<TriPoint> = TriSet::default();
        let mut holes = 0usize;
        for &cell in &hole_cells {
            if !visited.insert(cell) {
                continue;
            }
            holes += 1;
            let mut stack = vec![cell];
            while let Some(p) = stack.pop() {
                for q in p.neighbors() {
                    if cells.contains(&q) && visited.insert(q) {
                        stack.push(q);
                    }
                }
            }
        }
        holes
    }

    /// The perimeter through the closed form `p = 3n − e − 3 + 3H`.
    #[must_use]
    pub fn perimeter(&self) -> u64 {
        3 * self.len() as u64 - self.edges - 3 + 3 * self.hole_count() as u64
    }

    /// The translation-invariant canonical key of the configuration.
    #[must_use]
    pub fn canonical_key(&self) -> CanonicalKey {
        canonical_key(self.pos.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shapes, ParticleSystem};

    #[test]
    fn agrees_with_particle_system_on_shapes() {
        for shape in [shapes::line(8), shapes::annulus(2), shapes::spiral(20)] {
            let grid = ParticleSystem::new(shape.clone()).unwrap();
            let reference = RefSystem::new(shape).unwrap();
            assert_eq!(grid.edge_count(), reference.edge_count());
            assert_eq!(grid.perimeter(), reference.perimeter());
            assert_eq!(grid.hole_count(), reference.hole_count());
            assert_eq!(grid.canonical_key(), reference.canonical_key());
        }
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert_eq!(
            RefSystem::new([TriPoint::ORIGIN, TriPoint::ORIGIN]).unwrap_err(),
            SystemError::DuplicateLocation(TriPoint::ORIGIN)
        );
        assert_eq!(
            RefSystem::new(std::iter::empty()).unwrap_err(),
            SystemError::Empty
        );
    }
}
