//! Particle-system configurations on the triangular lattice.
//!
//! This crate implements the *configuration layer* of the compression paper
//! (Cannon, Daymude, Randall, Richa — PODC 2016): occupancy of lattice
//! vertices by particles, the quantities the theory reasons about
//! (edges `e(σ)`, triangles `t(σ)`, perimeter `p(σ)`, holes), and the local
//! move-validity conditions (Properties 1 and 2 plus the five-neighbor rule)
//! that the Markov chain `M` of `sops-core` applies.
//!
//! # Overview
//!
//! * [`ParticleSystem`] — a set of `n` particles occupying distinct lattice
//!   vertices, backed by the bit-packed [`sops_lattice::TileGrid`]: O(1)
//!   occupancy queries, word-level neighbor counts and ring masks, and an
//!   incrementally maintained edge count.
//! * [`mod@reference`] — the retained hash-map-backed implementation, used as a
//!   differential-testing oracle for the grid.
//! * [`moves`] — O(1) move validity from the 8-bit occupancy mask of the
//!   [`sops_lattice::PairRing`], with first-principles reference
//!   implementations used for cross-validation.
//! * [`holes`] — exterior flood fill; hole detection and counting.
//! * [`boundary`] — hexagonal-dual boundary tracer; an independent perimeter
//!   computation used to verify the closed-form `p = 3n − e − 3 + 3H`.
//! * [`metrics`] — `pmin`, `pmax`, compression/expansion ratios, and the
//!   identities of Lemmas 2.1, 2.3 and 2.4.
//! * [`shapes`] — initial configurations: lines, spirals, rings with holes,
//!   random connected clusters.
//!
//! # Example
//!
//! ```
//! use sops_system::{shapes, ParticleSystem};
//!
//! let sys = ParticleSystem::connected(shapes::line(10)).unwrap();
//! assert_eq!(sys.len(), 10);
//! assert_eq!(sys.edge_count(), 9);
//! assert_eq!(sys.perimeter(), 18); // pmax = 2n − 2 for a tree
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
mod canonical;
mod config;
mod error;
pub mod holes;
pub mod metrics;
pub mod moves;
pub mod reference;
pub mod shapes;

pub use canonical::{canonical_key, canonical_points, CanonicalKey};
pub use config::{ParticleId, ParticleSystem};
pub use error::SystemError;
pub use moves::MoveValidity;
