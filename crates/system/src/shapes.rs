//! Initial configurations: lines, spirals, hexagons, rings and random clusters.
//!
//! The paper's simulations start from a straight line of particles (Figures
//! 2 and 10); its proofs use spanning-tree and spiral extremal shapes, and
//! hole-elimination (Lemma 3.8) is best exercised from ring-shaped starts.

use rand::Rng;
use sops_lattice::{Direction, TriPoint, TriSet};

/// A straight line of `n` particles along the east axis: `(0,0) … (n−1,0)`.
///
/// This is the initial configuration of the paper's simulations (Fig. 2).
#[must_use]
pub fn line(n: usize) -> Vec<TriPoint> {
    (0..n).map(|x| TriPoint::new(x as i32, 0)).collect()
}

/// The full hexagonal ball of radius `r` (all `3r(r+1)+1` vertices within
/// lattice distance `r` of the origin).
#[must_use]
pub fn hexagon(r: u32) -> Vec<TriPoint> {
    let r = r as i32;
    let mut pts = Vec::new();
    for y in -r..=r {
        for x in -r..=r {
            let p = TriPoint::new(x, y);
            if TriPoint::ORIGIN.distance(p) <= r as u32 {
                pts.push(p);
            }
        }
    }
    pts
}

/// The hexagonal ring of radius `r ≥ 1`: the `6r` vertices at lattice
/// distance exactly `r`, in cyclic order. Encloses a hole of `3r(r−1)+1`
/// cells — the canonical starting point for hole-elimination experiments.
///
/// # Panics
///
/// Panics if `r == 0` (a ring needs positive radius).
#[must_use]
pub fn annulus(r: u32) -> Vec<TriPoint> {
    assert!(r >= 1, "annulus radius must be at least 1");
    let r = r as i32;
    let mut pts = Vec::with_capacity(6 * r as usize);
    let mut p = TriPoint::new(r, 0);
    for k in 0..6 {
        let dir = Direction::from_index(k + 2);
        for _ in 0..r {
            pts.push(p);
            p += dir;
        }
    }
    debug_assert_eq!(p, TriPoint::new(r, 0));
    pts
}

/// An L-shaped tree: a horizontal arm of `w` particles and a vertical
/// (northeast) arm of `h` particles sharing the corner particle.
///
/// # Panics
///
/// Panics if `w == 0` or `h == 0`.
#[must_use]
pub fn l_shape(w: usize, h: usize) -> Vec<TriPoint> {
    assert!(w > 0 && h > 0, "both arms must be non-empty");
    let mut pts = line(w);
    let corner = TriPoint::new(w as i32 - 1, 0);
    for j in 1..h {
        pts.push(TriPoint::new(corner.x, j as i32));
    }
    pts
}

/// The maximally compressed "spiral" of `n` particles.
///
/// Grows greedily from the origin, always adding the unoccupied candidate
/// with the most occupied neighbors (ties broken by distance from the
/// origin, then lexicographically) — the classical construction achieving
/// Harborth's edge maximum `emax(n)`, hence perimeter `pmin(n)`; verified
/// against the closed form in `metrics` tests for `n ≤ 150` and against
/// exhaustive enumeration in `sops-enumerate`.
#[must_use]
pub fn spiral(n: usize) -> Vec<TriPoint> {
    let mut placed: Vec<TriPoint> = Vec::with_capacity(n);
    if n == 0 {
        return placed;
    }
    let mut occupied: TriSet<TriPoint> = TriSet::default();
    let mut candidates: TriSet<TriPoint> = TriSet::default();
    placed.push(TriPoint::ORIGIN);
    occupied.insert(TriPoint::ORIGIN);
    for q in TriPoint::ORIGIN.neighbors() {
        candidates.insert(q);
    }
    while placed.len() < n {
        let best = candidates
            .iter()
            .copied()
            .map(|c| {
                let occ_neighbors = c.neighbors().filter(|q| occupied.contains(q)).count();
                (c, occ_neighbors)
            })
            .min_by_key(|&(c, occ_neighbors)| {
                (
                    usize::MAX - occ_neighbors, // max neighbors first
                    TriPoint::ORIGIN.distance(c),
                    c.y,
                    c.x,
                )
            })
            .map(|(c, _)| c)
            .expect("candidate set never empties while placing");
        candidates.remove(&best);
        occupied.insert(best);
        placed.push(best);
        for q in best.neighbors() {
            if !occupied.contains(&q) {
                candidates.insert(q);
            }
        }
    }
    placed
}

/// A 72-particle hole-free configuration with **no** valid Property-1 move
/// and 35 valid Property-2 moves — a witness for the phenomenon of the
/// paper's Figure 3 (all valid moves of `M` satisfy Property 2).
///
/// Exhaustive enumeration shows no such configuration exists with `n ≤ 11`;
/// this one was discovered by beam search, growing a two-strand "hairpin"
/// (whose tip-hop across the one-cell gap is the canonical Property-2 move)
/// until the coiled windings strand every Property-1 pivot. The claimed
/// properties are re-verified by this crate's tests and by the
/// `fig3_property2` experiment binary.
#[must_use]
pub fn figure3_witness() -> Vec<TriPoint> {
    const CELLS: [(i32, i32); 72] = [
        (0, 0),
        (-1, 1),
        (-2, 2),
        (-3, 3),
        (-4, 4),
        (-4, 5),
        (-3, 5),
        (-2, 4),
        (-1, 3),
        (0, 2),
        (1, 0),
        (2, 0),
        (2, 1),
        (2, 2),
        (0, 3),
        (2, 3),
        (1, 4),
        (0, 5),
        (-1, 5),
        (-3, 6),
        (-3, 7),
        (-2, 7),
        (0, 6),
        (0, 7),
        (-1, 8),
        (-2, 9),
        (-3, 9),
        (-4, 9),
        (-5, 9),
        (-5, 8),
        (-5, 6),
        (-6, 7),
        (-6, 9),
        (-7, 9),
        (-8, 9),
        (-8, 8),
        (-8, 7),
        (-7, 6),
        (-5, 4),
        (-6, 4),
        (-7, 4),
        (-8, 5),
        (-9, 7),
        (-10, 7),
        (-10, 6),
        (-8, 4),
        (-9, 4),
        (-10, 4),
        (-11, 5),
        (-12, 6),
        (-12, 7),
        (-11, 8),
        (-12, 9),
        (-13, 9),
        (-13, 7),
        (-14, 8),
        (-15, 9),
        (-15, 10),
        (-15, 11),
        (-14, 11),
        (-12, 10),
        (-12, 11),
        (-13, 12),
        (-15, 12),
        (-15, 13),
        (-15, 14),
        (-14, 14),
        (-13, 14),
        (-12, 13),
        (-11, 12),
        (-10, 11),
        (-10, 10),
    ];
    CELLS.iter().map(|&(x, y)| TriPoint::new(x, y)).collect()
}

/// A random connected cluster of `n` particles (Eden growth model).
///
/// Starts at the origin and repeatedly attaches a uniformly random
/// unoccupied cell adjacent to the cluster. Always connected and typically
/// hole-free but not guaranteed to be; use
/// [`crate::holes::analyze`] when hole-freeness matters.
#[must_use]
pub fn random_connected(n: usize, rng: &mut impl Rng) -> Vec<TriPoint> {
    let mut placed: Vec<TriPoint> = Vec::with_capacity(n);
    if n == 0 {
        return placed;
    }
    let mut occupied: TriSet<TriPoint> = TriSet::default();
    let mut frontier: Vec<TriPoint> = Vec::new();
    let mut in_frontier: TriSet<TriPoint> = TriSet::default();
    placed.push(TriPoint::ORIGIN);
    occupied.insert(TriPoint::ORIGIN);
    for q in TriPoint::ORIGIN.neighbors() {
        if in_frontier.insert(q) {
            frontier.push(q);
        }
    }
    while placed.len() < n {
        let idx = rng.gen_range(0..frontier.len());
        let cell = frontier.swap_remove(idx);
        in_frontier.remove(&cell);
        occupied.insert(cell);
        placed.push(cell);
        for q in cell.neighbors() {
            if !occupied.contains(&q) && in_frontier.insert(q) {
                frontier.push(q);
            }
        }
    }
    placed
}

/// A random connected *tree-like* configuration biased toward long
/// perimeter: random growth that only attaches cells touching exactly one
/// occupied neighbor when possible.
///
/// Useful as a high-entropy starting state distinct from the straight line.
#[must_use]
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Vec<TriPoint> {
    let mut placed: Vec<TriPoint> = Vec::with_capacity(n);
    if n == 0 {
        return placed;
    }
    let mut occupied: TriSet<TriPoint> = TriSet::default();
    placed.push(TriPoint::ORIGIN);
    occupied.insert(TriPoint::ORIGIN);
    while placed.len() < n {
        // Pick a random placed particle and try to grow a leaf off it.
        let base = placed[rng.gen_range(0..placed.len())];
        let dir = Direction::from_index(rng.gen_range(0..6));
        let cell = base + dir;
        if occupied.contains(&cell) {
            continue;
        }
        let occ_neighbors = cell.neighbors().filter(|q| occupied.contains(q)).count();
        if occ_neighbors == 1 {
            occupied.insert(cell);
            placed.push(cell);
        }
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParticleSystem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_is_connected_tree() {
        let sys = ParticleSystem::connected(line(10)).unwrap();
        assert_eq!(sys.edge_count(), 9);
        assert_eq!(sys.triangle_count(), 0);
    }

    #[test]
    fn hexagon_sizes() {
        for r in 0..5u32 {
            let pts = hexagon(r);
            assert_eq!(pts.len(), (3 * r * (r + 1) + 1) as usize, "radius {r}");
            ParticleSystem::connected(pts).unwrap();
        }
    }

    #[test]
    fn annulus_is_connected_ring_with_hole() {
        for r in 1..5u32 {
            let pts = annulus(r);
            assert_eq!(pts.len(), (6 * r) as usize);
            let sys = ParticleSystem::connected(pts).unwrap();
            assert_eq!(sys.hole_count(), 1, "radius {r}");
        }
    }

    #[test]
    fn l_shape_is_a_tree() {
        let sys = ParticleSystem::connected(l_shape(4, 3)).unwrap();
        assert_eq!(sys.len(), 6);
        assert_eq!(sys.edge_count(), 5);
        assert_eq!(sys.perimeter(), 10);
    }

    #[test]
    fn spiral_prefix_is_always_connected() {
        let pts = spiral(40);
        for k in 1..=40 {
            ParticleSystem::connected(pts[..k].iter().copied()).unwrap();
        }
    }

    #[test]
    fn random_connected_is_connected_and_sized() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 10, 50] {
            let sys = ParticleSystem::connected(random_connected(n, &mut rng)).unwrap();
            assert_eq!(sys.len(), n);
        }
    }

    #[test]
    fn figure3_witness_has_only_property2_moves() {
        use sops_lattice::Direction;
        let sys = ParticleSystem::connected(figure3_witness()).unwrap();
        assert_eq!(sys.len(), 72);
        assert_eq!(sys.hole_count(), 0);
        let mut p1 = 0;
        let mut p2_only = 0;
        for id in 0..sys.len() {
            let from = sys.position(id);
            for dir in Direction::ALL {
                let v = sys.check_move(from, dir);
                if v.is_structurally_valid() {
                    if v.property1 {
                        p1 += 1;
                    } else {
                        p2_only += 1;
                    }
                }
            }
        }
        assert_eq!(p1, 0, "witness must have no valid Property-1 move");
        assert_eq!(p2_only, 35, "witness has 35 Property-2-only moves");
    }

    #[test]
    fn random_tree_has_no_triangles() {
        let mut rng = StdRng::seed_from_u64(11);
        let sys = ParticleSystem::connected(random_tree(40, &mut rng)).unwrap();
        assert_eq!(sys.triangle_count(), 0);
        assert_eq!(sys.edge_count(), 39);
        assert_eq!(sys.perimeter(), sops_lattice_pmax(40));
    }

    fn sops_lattice_pmax(n: usize) -> u64 {
        crate::metrics::pmax(n)
    }
}
