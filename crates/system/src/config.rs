//! The [`ParticleSystem`] configuration type.

use sops_lattice::{BoundingBox, Direction, TileGrid, TriPoint};

use crate::canonical::{canonical_key, CanonicalKey};
use crate::moves::MoveValidity;
use crate::SystemError;

/// Index of a particle within a [`ParticleSystem`] (`0..n`).
pub type ParticleId = usize;

/// A configuration of `n` particles occupying distinct vertices of `G∆`.
///
/// This is the state the paper's Markov chain `M` acts on: all particles are
/// contracted, each occupying a single lattice vertex (Section 3.1; expanded
/// intermediate states only exist inside the local algorithm `A` of
/// `sops-core`). The structure maintains:
///
/// * a bit-packed tiled occupancy grid ([`sops_lattice::TileGrid`]): 8×8-site
///   `u64` tiles answer occupancy tests, neighbor counts and the full
///   [`sops_lattice::PairRing`] mask of [`ParticleSystem::check_move`] from
///   at most four tile words, with particle ids stored per site,
/// * a particle → location vector for uniform random particle selection,
/// * the configuration edge count `e(σ)`, updated incrementally in O(1) per
///   move (the paper's Metropolis filter only ever needs the *change* in
///   edge count, which is local).
///
/// A hash-map-backed implementation with identical observable behavior is
/// kept as [`crate::reference::RefSystem`] and differential-tested against
/// this one.
///
/// # Example
///
/// ```
/// use sops_lattice::{Direction, TriPoint};
/// use sops_system::ParticleSystem;
///
/// // A triangle of three particles.
/// let sys = ParticleSystem::connected([
///     TriPoint::new(0, 0),
///     TriPoint::new(1, 0),
///     TriPoint::new(0, 1),
/// ])
/// .unwrap();
/// assert_eq!(sys.edge_count(), 3);
/// assert_eq!(sys.triangle_count(), 1);
/// assert_eq!(sys.perimeter(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct ParticleSystem {
    grid: TileGrid,
    pos: Vec<TriPoint>,
    edges: u64,
    /// Optional per-particle orientation (indexed by id, like `pos`).
    /// Quenched state for Hamiltonians beyond edge count — moves relocate a
    /// particle but never change its orientation.
    orientation: Option<Vec<u8>>,
}

impl ParticleSystem {
    /// Builds a configuration from particle locations.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Empty`] for an empty iterator and
    /// [`SystemError::DuplicateLocation`] if a location repeats.
    pub fn new(points: impl IntoIterator<Item = TriPoint>) -> Result<ParticleSystem, SystemError> {
        let pos: Vec<TriPoint> = points.into_iter().collect();
        if pos.is_empty() {
            return Err(SystemError::Empty);
        }
        let mut grid = TileGrid::with_site_capacity(pos.len());
        for (id, p) in pos.iter().enumerate() {
            let id = u32::try_from(id).expect("particle count exceeds u32 ids");
            if grid.insert(*p, id).is_some() {
                return Err(SystemError::DuplicateLocation(*p));
            }
        }
        let mut sys = ParticleSystem {
            grid,
            pos,
            edges: 0,
            orientation: None,
        };
        sys.edges = sys.recount_edges();
        Ok(sys)
    }

    /// Builds a configuration and verifies it is connected.
    ///
    /// The compression chain requires a connected starting configuration
    /// (Section 3.1); this constructor enforces that precondition.
    ///
    /// # Errors
    ///
    /// Everything [`ParticleSystem::new`] returns, plus
    /// [`SystemError::NotConnected`].
    pub fn connected(
        points: impl IntoIterator<Item = TriPoint>,
    ) -> Result<ParticleSystem, SystemError> {
        let sys = ParticleSystem::new(points)?;
        if !sys.is_connected() {
            return Err(SystemError::NotConnected);
        }
        Ok(sys)
    }

    /// Number of particles `n`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Returns `true` if the system has no particles (never true for
    /// instances built through the public constructors).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// The number of configuration edges `e(σ)` — lattice edges with both
    /// endpoints occupied (Section 2.2).
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edges
    }

    /// Returns `true` if `p` is occupied by a particle.
    #[inline]
    #[must_use]
    pub fn is_occupied(&self, p: TriPoint) -> bool {
        self.grid.contains(p)
    }

    /// The particle occupying `p`, if any.
    #[inline]
    #[must_use]
    pub fn particle_at(&self, p: TriPoint) -> Option<ParticleId> {
        self.grid.get(p).map(|id| id as ParticleId)
    }

    /// The occupancy grid backing this configuration (for the word-level
    /// scans in [`crate::boundary`] and [`crate::holes`]).
    #[inline]
    pub(crate) fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The location of particle `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n`.
    #[inline]
    #[must_use]
    pub fn position(&self, id: ParticleId) -> TriPoint {
        self.pos[id]
    }

    /// All particle locations, indexed by particle id.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[TriPoint] {
        &self.pos
    }

    /// Iterates over the occupied lattice locations (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = TriPoint> + '_ {
        self.pos.iter().copied()
    }

    /// Attaches per-particle orientations (indexed by particle id).
    ///
    /// Orientations are *quenched* state for Hamiltonians beyond edge count
    /// (e.g. alignment): a move relocates a particle but never changes its
    /// orientation, so the vector stays id-indexed across any number of
    /// moves. Configurations without orientations (the default) behave
    /// exactly as before.
    ///
    /// # Errors
    ///
    /// [`SystemError::OrientationCount`] when the vector length differs
    /// from the particle count.
    pub fn with_orientations(
        mut self,
        orientations: Vec<u8>,
    ) -> Result<ParticleSystem, SystemError> {
        if orientations.len() != self.pos.len() {
            return Err(SystemError::OrientationCount {
                expected: self.pos.len(),
                got: orientations.len(),
            });
        }
        self.orientation = Some(orientations);
        Ok(self)
    }

    /// Attaches uniformly random orientations in `0..q`, drawn from a
    /// dedicated [`rand::rngs::StdRng`] seeded with `seed` (so the
    /// assignment is a pure function of `(q, seed)`, independent of any
    /// simulation RNG stream).
    ///
    /// # Panics
    ///
    /// Panics when `q == 0`.
    #[must_use]
    pub fn with_random_orientations(self, q: u8, seed: u64) -> ParticleSystem {
        use rand::{Rng as _, SeedableRng as _};
        assert!(q > 0, "orientation count must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let orientations = (0..self.pos.len()).map(|_| rng.gen_range(0..q)).collect();
        self.with_orientations(orientations)
            .expect("generated vector has the right length")
    }

    /// The orientation of particle `id`, when orientations are attached.
    ///
    /// # Panics
    ///
    /// Panics if `id >= n` while orientations are attached.
    #[inline]
    #[must_use]
    pub fn orientation(&self, id: ParticleId) -> Option<u8> {
        self.orientation.as_ref().map(|o| o[id])
    }

    /// All per-particle orientations (id-indexed), when attached.
    #[inline]
    #[must_use]
    pub fn orientations(&self) -> Option<&[u8]> {
        self.orientation.as_deref()
    }

    /// The number of occupied neighbors of location `p`, answered from at
    /// most four tile words.
    ///
    /// `p` itself does not count, whether or not it is occupied.
    #[inline]
    #[must_use]
    pub fn neighbor_count(&self, p: TriPoint) -> u8 {
        self.grid.neighbor_count(p)
    }

    /// The number of configuration triangles `t(σ)` — lattice faces with all
    /// three corners occupied (Section 2.2, used by Lemma 2.4).
    #[must_use]
    pub fn triangle_count(&self) -> u64 {
        let mut t = 0u64;
        for &p in &self.pos {
            let east = self.is_occupied(p + Direction::E);
            if east && self.is_occupied(p + Direction::NE) {
                t += 1;
            }
            if east && self.is_occupied(p + Direction::SE) {
                t += 1;
            }
        }
        t
    }

    /// Tests whether the configuration is connected (Section 2.2) via BFS.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.pos.is_empty() {
            return true;
        }
        let mut visited = vec![false; self.pos.len()];
        let mut stack = vec![0 as ParticleId];
        visited[0] = true;
        let mut seen = 1usize;
        while let Some(id) = stack.pop() {
            let p = self.pos[id];
            for d in Direction::ALL {
                if let Some(other) = self.particle_at(p + d) {
                    if !visited[other] {
                        visited[other] = true;
                        seen += 1;
                        stack.push(other);
                    }
                }
            }
        }
        seen == self.pos.len()
    }

    /// The smallest bounding box containing all particles.
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of(self.iter()).expect("particle systems are non-empty")
    }

    /// Evaluates the paper's move conditions for moving the particle at
    /// `from` one step in direction `dir` (Algorithm `M`, Step 6).
    ///
    /// The result reports target occupancy, the neighbor counts `e` and `e′`,
    /// the five-neighbor hole guard (Condition 1) and Properties 1/2
    /// (Condition 2). The Metropolis filter (Condition 3) is probabilistic
    /// and belongs to the chain in `sops-core`.
    #[must_use]
    pub fn check_move(&self, from: TriPoint, dir: Direction) -> MoveValidity {
        let (mask, target_occupied) = self.grid.pair_ring_mask(from, dir);
        MoveValidity::from_mask(mask, target_occupied)
    }

    /// Calls `f` for every particle whose Algorithm-`M` acceptance
    /// probabilities a move `(from → from + dir)` can touch, with its id,
    /// location, and the bitmask of move directions (bit `i` =
    /// `Direction::from_index(i)`) whose acceptance actually reads one of
    /// the two changed sites.
    ///
    /// This is the revalidation hook of the rejection-free sampler in
    /// `sops-core`: after the move is applied, exactly these `(particle,
    /// direction)` pairs (at most 24 sites, the union of the two radius-2
    /// discs around `from` and `from + dir` — see
    /// [`crate::moves::revalidation_plan`]) need their acceptance masses
    /// recomputed; every other pair's mask is untouched by the occupancy
    /// change. Call it *after* mutating the configuration so the mover is
    /// visited at its new location (where all six of its directions are
    /// planned).
    pub fn for_each_particle_near_move(
        &self,
        from: TriPoint,
        dir: Direction,
        mut f: impl FnMut(ParticleId, TriPoint, u8),
    ) {
        for &((ox, oy), dmask) in crate::moves::revalidation_plan(dir) {
            let p = TriPoint::new(from.x + ox, from.y + oy);
            if let Some(id) = self.particle_at(p) {
                f(id, p, dmask);
            }
        }
    }

    /// The 5×5 occupancy window centered on `p`, as one `u32` bitboard
    /// (bit `(dy + 2) · 5 + (dx + 2)` for the site at offset `(dx, dy)`).
    ///
    /// One gather covers `p`'s whole radius-2 disc — every
    /// [`sops_lattice::PairRing`] of its six moves — so
    /// [`crate::moves::check_move_in_window25`] can evaluate all six
    /// directions from this single word. This is the bulk-revalidation
    /// primitive of the rejection-free sampler in `sops-core`.
    #[inline]
    #[must_use]
    pub fn window25(&self, p: TriPoint) -> u32 {
        self.grid.window25(p.x - 2, p.y - 2)
    }

    /// Moves particle `id` one step in direction `dir`, updating the edge
    /// count incrementally, without checking Properties 1/2.
    ///
    /// This is the raw mutation used by the chain after it has validated the
    /// move; it enforces only the structural requirements (valid id,
    /// unoccupied target).
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::NoSuchParticle`] or
    /// [`SystemError::TargetOccupied`].
    pub fn move_particle(&mut self, id: ParticleId, dir: Direction) -> Result<(), SystemError> {
        let from = *self.pos.get(id).ok_or(SystemError::NoSuchParticle(id))?;
        let to = from + dir;
        // One window fetch yields the target occupancy and both neighbor
        // counts: with `from` vacated and `to` still empty, `e` and `e′` are
        // exactly the two 5-site arcs of the pair-ring mask.
        let (mask, target_occupied) = self.grid.pair_ring_mask(from, dir);
        if target_occupied {
            return Err(SystemError::TargetOccupied(to));
        }
        let validity = MoveValidity::from_mask(mask, false);
        let moved = self
            .grid
            .remove(from)
            .expect("particle positions always occupy the grid");
        self.edges = self.edges - validity.e_from as u64 + validity.e_to as u64;
        self.grid.insert(to, moved);
        self.pos[id] = to;
        Ok(())
    }

    /// The number of holes `H(σ)`: finite maximal connected unoccupied
    /// regions (Section 2.2). Computed by exterior flood fill; see
    /// [`crate::holes`].
    #[must_use]
    pub fn hole_count(&self) -> usize {
        crate::holes::analyze(self).hole_count
    }

    /// The perimeter `p(σ)`: total length of all boundary walks, counting
    /// cut edges twice (Section 2.2).
    ///
    /// Computed through the closed form `p = 3n − e − 3 + 3H`, which
    /// generalizes Lemma 2.3 (`e = 3n − p − 3` for hole-free configurations)
    /// to configurations with `H` holes. Derivation: each boundary component
    /// corresponds to a cycle of hexagonal-dual boundary edges; the external
    /// cycle has hex-length `2k + 6` for walk length `k` and each hole cycle
    /// has hex-length `2k − 6`, while the total number of boundary hex edges
    /// is `6n − 2e`. The identity is verified exhaustively against the
    /// independent boundary tracer of [`crate::boundary`] in this crate's
    /// tests.
    ///
    /// Requires a connected configuration to be meaningful (as in the paper).
    #[must_use]
    pub fn perimeter(&self) -> u64 {
        let holes = self.hole_count() as u64;
        self.perimeter_with_holes(holes)
    }

    /// The perimeter given an externally known hole count.
    ///
    /// The chain of `sops-core` tracks hole-freeness (holes can never
    /// reappear once eliminated — Lemma 3.2), so it can skip the flood fill
    /// and call this with `holes = 0`.
    #[inline]
    #[must_use]
    pub fn perimeter_with_holes(&self, holes: u64) -> u64 {
        3 * self.len() as u64 - self.edges - 3 + 3 * holes
    }

    /// A translation-invariant canonical key identifying the configuration
    /// (Section 2.2 identifies configurations up to translation).
    #[must_use]
    pub fn canonical_key(&self) -> CanonicalKey {
        canonical_key(self.iter())
    }

    /// Recounts edges from scratch (used to validate the incremental count).
    #[must_use]
    pub fn recount_edges(&self) -> u64 {
        let mut twice = 0u64;
        for &p in &self.pos {
            twice += self.neighbor_count(p) as u64;
        }
        twice / 2
    }

    /// Checks internal invariants (grid↔position agreement, grid internal
    /// consistency, incremental edge count). Intended for tests and debug
    /// assertions.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_invariants(&self) {
        self.grid.assert_valid();
        assert_eq!(self.grid.len(), self.pos.len(), "occupancy size mismatch");
        for (id, &p) in self.pos.iter().enumerate() {
            assert_eq!(
                self.grid.get(p),
                Some(id as u32),
                "particle {id} at {p} disagrees with the grid"
            );
        }
        assert_eq!(self.edges, self.recount_edges(), "edge count drifted");
    }
}

impl PartialEq for ParticleSystem {
    /// Configurations compare equal when they occupy the same locations
    /// (particle ids are anonymous, as in the paper; orientations are
    /// auxiliary per-particle state and do not participate).
    fn eq(&self, other: &Self) -> bool {
        self.pos.len() == other.pos.len() && self.pos.iter().all(|p| other.is_occupied(*p))
    }
}

impl Eq for ParticleSystem {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn triangle() -> ParticleSystem {
        ParticleSystem::connected([
            TriPoint::new(0, 0),
            TriPoint::new(1, 0),
            TriPoint::new(0, 1),
        ])
        .unwrap()
    }

    #[test]
    fn new_rejects_duplicates_and_empty() {
        assert_eq!(
            ParticleSystem::new([TriPoint::ORIGIN, TriPoint::ORIGIN]),
            Err(SystemError::DuplicateLocation(TriPoint::ORIGIN))
        );
        assert_eq!(
            ParticleSystem::new(std::iter::empty()),
            Err(SystemError::Empty)
        );
    }

    #[test]
    fn connected_rejects_disconnected() {
        let res = ParticleSystem::connected([TriPoint::ORIGIN, TriPoint::new(5, 5)]);
        assert_eq!(res, Err(SystemError::NotConnected));
    }

    #[test]
    fn edge_and_triangle_counts() {
        let sys = triangle();
        assert_eq!(sys.edge_count(), 3);
        assert_eq!(sys.triangle_count(), 1);
        let line = ParticleSystem::connected(shapes::line(5)).unwrap();
        assert_eq!(line.edge_count(), 4);
        assert_eq!(line.triangle_count(), 0);
    }

    #[test]
    fn move_particle_updates_edges_incrementally() {
        let mut sys = ParticleSystem::connected(shapes::line(4)).unwrap();
        // Move the last particle of the line 0..4 up-left so it forms a
        // triangle with particles 2 and 3: (3,0) -> (2,1)? (2,1) neighbors
        // (2,0) and (3,0)... but (3,0) is the mover itself, so e' counts (2,0) and (1,1)=empty.
        let id = sys.particle_at(TriPoint::new(3, 0)).unwrap();
        sys.move_particle(id, Direction::NW).unwrap();
        assert_eq!(sys.position(id), TriPoint::new(2, 1));
        sys.assert_invariants();
        assert_eq!(sys.edge_count(), sys.recount_edges());
    }

    #[test]
    fn move_particle_rejects_occupied_target() {
        let mut sys = ParticleSystem::connected(shapes::line(3)).unwrap();
        let id = sys.particle_at(TriPoint::new(0, 0)).unwrap();
        assert_eq!(
            sys.move_particle(id, Direction::E),
            Err(SystemError::TargetOccupied(TriPoint::new(1, 0)))
        );
        assert_eq!(
            sys.move_particle(99, Direction::E),
            Err(SystemError::NoSuchParticle(99))
        );
    }

    #[test]
    fn perimeter_of_small_shapes() {
        assert_eq!(
            ParticleSystem::new([TriPoint::ORIGIN]).unwrap().perimeter(),
            0
        );
        assert_eq!(
            ParticleSystem::connected(shapes::line(2))
                .unwrap()
                .perimeter(),
            2
        );
        assert_eq!(triangle().perimeter(), 3);
        // A line of n particles is a tree: p = 2n − 2.
        for n in 2..12 {
            let line = ParticleSystem::connected(shapes::line(n)).unwrap();
            assert_eq!(line.perimeter(), 2 * n as u64 - 2);
        }
    }

    #[test]
    fn equality_is_anonymous() {
        let a = ParticleSystem::new([TriPoint::new(0, 0), TriPoint::new(1, 0)]).unwrap();
        let b = ParticleSystem::new([TriPoint::new(1, 0), TriPoint::new(0, 0)]).unwrap();
        assert_eq!(a, b);
        let c = ParticleSystem::new([TriPoint::new(0, 0), TriPoint::new(0, 1)]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn orientations_attach_and_survive_moves() {
        let sys = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert_eq!(sys.orientations(), None);
        assert_eq!(sys.orientation(0), None);
        let mut sys = sys.with_orientations(vec![0, 1, 2, 1]).unwrap();
        assert_eq!(sys.orientation(3), Some(1));
        let id = sys.particle_at(TriPoint::new(3, 0)).unwrap();
        sys.move_particle(id, Direction::NW).unwrap();
        // Orientations are id-indexed; the move changes nothing.
        assert_eq!(sys.orientations(), Some(&[0, 1, 2, 1][..]));
    }

    #[test]
    fn orientation_length_mismatch_is_rejected() {
        let sys = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert_eq!(
            sys.with_orientations(vec![0, 1]).unwrap_err(),
            SystemError::OrientationCount {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn random_orientations_are_a_function_of_seed() {
        let build = |seed| {
            ParticleSystem::connected(shapes::line(30))
                .unwrap()
                .with_random_orientations(4, seed)
        };
        assert_eq!(build(7).orientations(), build(7).orientations());
        assert_ne!(build(7).orientations(), build(8).orientations());
        assert!(build(7).orientations().unwrap().iter().all(|&o| o < 4));
    }

    #[test]
    fn connectivity_detects_bridges() {
        // A "V" of particles is connected; removing the apex disconnects it.
        let sys = ParticleSystem::connected([
            TriPoint::new(-1, 0),
            TriPoint::new(0, 0),
            TriPoint::new(1, 0),
        ])
        .unwrap();
        assert!(sys.is_connected());
    }
}
