//! Extremal perimeter values and compression/expansion ratios.
//!
//! Section 2.3 of the paper: for a connected hole-free configuration of `n`
//! particles the perimeter ranges from `pmin(n) = Θ(√n)` (most compressed)
//! to `pmax(n) = 2n − 2` (a spanning tree with no triangles). A
//! configuration is *α-compressed* when `p(σ) ≤ α·pmin` (Definition 2.2) and
//! *β-expanded* when `p(σ) ≥ β·pmax` (Section 5).
//!
//! The exact minimum follows from Harborth's bound on the maximum number of
//! edges spanned by `n` points of the triangular lattice,
//! `emax(n) = ⌊3n − √(12n − 3)⌋`, combined with Lemma 2.3
//! (`p = 3n − e − 3`): `pmin(n) = ⌈√(12n − 3)⌉ − 3`. Both are cross-checked
//! in `sops-enumerate` against exhaustive enumeration for small `n` and
//! against the explicit spiral construction of [`crate::shapes::spiral`] for
//! larger `n`.

use sops_lattice::Direction;

use crate::ParticleSystem;

/// Integer ceiling of `√v`.
#[must_use]
fn ceil_sqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut r = (v as f64).sqrt() as u64;
    // Correct floating-point error in both directions.
    while r * r > v {
        r -= 1;
    }
    while r * r < v {
        r += 1;
    }
    r
}

/// The minimum possible perimeter of a connected configuration of `n`
/// particles: `pmin(n) = ⌈√(12n − 3)⌉ − 3`.
///
/// ```
/// use sops_system::metrics::pmin;
/// assert_eq!(pmin(1), 0);
/// assert_eq!(pmin(2), 2);
/// assert_eq!(pmin(3), 3);
/// assert_eq!(pmin(7), 6); // the hexagon of 7 particles
/// ```
#[must_use]
pub fn pmin(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    ceil_sqrt(12 * n as u64 - 3) - 3
}

/// The maximum possible perimeter of a connected hole-free configuration of
/// `n` particles: `pmax(n) = 2n − 2` (an induced tree; Section 2.3).
#[must_use]
pub fn pmax(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        2 * n as u64 - 2
    }
}

/// The maximum number of configuration edges among `n` particles:
/// `emax(n) = ⌊3n − √(12n − 3)⌋` (Harborth), equal to `3n − 3 − pmin(n)`.
#[must_use]
pub fn emax(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    3 * n as u64 - 3 - pmin(n)
}

/// The maximum number of triangles among `n` particles:
/// `tmax(n) = 2n − 2 − pmin(n)` (by Lemma 2.4 at minimum perimeter).
#[must_use]
pub fn tmax(n: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    (2 * n as u64 - 2).saturating_sub(pmin(n))
}

/// The compression ratio `α(σ) = p(σ) / pmin(n)`.
///
/// A configuration is α-compressed in the paper's sense when this ratio is
/// at most α (Definition 2.2). Returns `f64::INFINITY` for `n ≤ 1` where
/// `pmin = 0`.
#[must_use]
pub fn compression_ratio(sys: &ParticleSystem) -> f64 {
    let denom = pmin(sys.len());
    if denom == 0 {
        return f64::INFINITY;
    }
    sys.perimeter() as f64 / denom as f64
}

/// The expansion ratio `β(σ) = p(σ) / pmax(n)`.
///
/// A configuration is β-expanded when this ratio is at least β (Section 5).
/// Returns `f64::NAN` for `n ≤ 1` where `pmax = 0`.
#[must_use]
pub fn expansion_ratio(sys: &ParticleSystem) -> f64 {
    let denom = pmax(sys.len());
    if denom == 0 {
        return f64::NAN;
    }
    sys.perimeter() as f64 / denom as f64
}

/// The number of *aligned* configuration edges `a(σ)`: edges whose two
/// endpoint particles carry the same orientation.
///
/// This is the energy of the alignment Hamiltonian in `sops-core`
/// (`H(σ) = a(σ)`, bias `λ^{a(σ)}`). Zero when the configuration carries no
/// orientations ([`ParticleSystem::orientations`]).
#[must_use]
pub fn aligned_pairs(sys: &ParticleSystem) -> u64 {
    let Some(orientations) = sys.orientations() else {
        return 0;
    };
    let mut twice = 0u64;
    for (id, &p) in sys.positions().iter().enumerate() {
        for d in Direction::ALL {
            if let Some(nb) = sys.particle_at(p + d) {
                if orientations[nb] == orientations[id] {
                    twice += 1;
                }
            }
        }
    }
    // Each aligned edge was counted once from each endpoint.
    twice / 2
}

/// The alignment order parameter `a(σ) / e(σ)`: the fraction of
/// configuration edges whose endpoints share an orientation.
///
/// `1/q` in a well-mixed random assignment of `q` orientations, approaching
/// 1 as like-oriented particles separate into single-orientation domains.
/// Returns `f64::NAN` when the configuration has no edges.
#[must_use]
pub fn alignment_order(sys: &ParticleSystem) -> f64 {
    let edges = sys.edge_count();
    if edges == 0 {
        return f64::NAN;
    }
    aligned_pairs(sys) as f64 / edges as f64
}

/// Verifies the hole-free geometry identities of Lemmas 2.3 and 2.4 on a
/// configuration: `e = 3n − p − 3` and `t = 2n − p − 2`.
///
/// # Panics
///
/// Panics if either identity fails; only meaningful for connected,
/// hole-free configurations.
pub fn assert_hole_free_identities(sys: &ParticleSystem) {
    let n = sys.len() as i64;
    let p = sys.perimeter() as i64;
    let e = sys.edge_count() as i64;
    let t = sys.triangle_count() as i64;
    assert_eq!(e, 3 * n - p - 3, "Lemma 2.3 violated");
    assert_eq!(t, 2 * n - p - 2, "Lemma 2.4 violated");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn ceil_sqrt_is_exact() {
        for v in 0..2000u64 {
            let r = ceil_sqrt(v);
            if v > 0 {
                assert!((r - 1) * (r - 1) < v, "v={v}, r={r}");
            }
            assert!(r * r >= v, "v={v}, r={r}");
        }
        // Perfect squares.
        assert_eq!(ceil_sqrt(81), 9);
        assert_eq!(ceil_sqrt(82), 10);
    }

    #[test]
    fn pmin_known_values() {
        // n = 1..=12: hand-checkable values.
        let expected = [0, 2, 3, 4, 5, 6, 6, 7, 8, 8, 9, 9];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(pmin(i + 1), want, "pmin({})", i + 1);
        }
    }

    #[test]
    fn full_hexagons_achieve_pmin() {
        // A full hexagon of radius r has n = 3r(r+1)+1 particles and
        // perimeter 6r.
        for r in 1..6usize {
            let n = 3 * r * (r + 1) + 1;
            assert_eq!(pmin(n), 6 * r as u64, "radius {r}");
            let sys = ParticleSystem::connected(shapes::hexagon(r as u32)).unwrap();
            assert_eq!(sys.len(), n);
            assert_eq!(sys.perimeter(), 6 * r as u64);
        }
    }

    #[test]
    fn emax_is_floor_form() {
        for n in 1..500usize {
            let direct = (3.0 * n as f64 - (12.0 * n as f64 - 3.0).sqrt()).floor() as u64;
            assert_eq!(emax(n), direct, "n={n}");
        }
    }

    #[test]
    fn pmin_lower_bound_lemma_2_1() {
        // Lemma 2.1: every connected configuration of n ≥ 2 particles has
        // perimeter at least √n; in particular pmin ≥ √n.
        for n in 2..2000usize {
            assert!(
                (pmin(n) as f64) >= (n as f64).sqrt(),
                "pmin({n}) = {} < √{n}",
                pmin(n)
            );
        }
    }

    #[test]
    fn lines_are_maximally_expanded() {
        for n in 2..30 {
            let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
            assert_eq!(sys.perimeter(), pmax(n));
            assert!((expansion_ratio(&sys) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spiral_is_maximally_compressed() {
        for n in 1..150 {
            let sys = ParticleSystem::connected(shapes::spiral(n)).unwrap();
            assert_eq!(
                sys.perimeter(),
                pmin(n),
                "spiral({n}) should achieve pmin; got p={} want {}",
                sys.perimeter(),
                pmin(n)
            );
            assert_eq!(sys.edge_count(), emax(n), "spiral({n}) edges");
        }
    }

    #[test]
    fn identities_hold_on_hole_free_shapes() {
        for n in [1, 2, 3, 5, 8, 13, 21, 34] {
            assert_hole_free_identities(&ParticleSystem::connected(shapes::line(n)).unwrap());
            assert_hole_free_identities(&ParticleSystem::connected(shapes::spiral(n)).unwrap());
        }
    }

    #[test]
    fn aligned_pairs_counts_matching_edges() {
        // A line 0-1-2-3 with orientations [0, 0, 1, 1]: edges (0,1) and
        // (2,3) are aligned, edge (1,2) is not.
        let sys = ParticleSystem::connected(shapes::line(4))
            .unwrap()
            .with_orientations(vec![0, 0, 1, 1])
            .unwrap();
        assert_eq!(aligned_pairs(&sys), 2);
        assert!((alignment_order(&sys) - 2.0 / 3.0).abs() < 1e-12);
        // No orientations ⇒ no aligned pairs by definition.
        let plain = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert_eq!(aligned_pairs(&plain), 0);
        // Uniform orientations ⇒ every edge aligned.
        let uniform = plain.with_orientations(vec![2; 4]).unwrap();
        assert_eq!(aligned_pairs(&uniform), uniform.edge_count());
        assert!((alignment_order(&uniform) - 1.0).abs() < 1e-12);
        // A single particle has no edges.
        let single = ParticleSystem::new([sops_lattice::TriPoint::ORIGIN])
            .unwrap()
            .with_orientations(vec![0])
            .unwrap();
        assert!(alignment_order(&single).is_nan());
    }

    #[test]
    fn ratios_handle_degenerate_sizes() {
        let single = ParticleSystem::new([sops_lattice::TriPoint::ORIGIN]).unwrap();
        assert!(compression_ratio(&single).is_infinite());
        assert!(expansion_ratio(&single).is_nan());
    }
}
