//! Property-based tests for configurations, move validity and perimeter.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sops_lattice::{Direction, TriPoint};
use sops_system::reference::RefSystem;
use sops_system::{boundary, holes, metrics, moves, shapes, ParticleSystem};

/// A random connected configuration from a seeded Eden growth.
fn arb_connected() -> impl Strategy<Value = ParticleSystem> {
    (1usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::connected(shapes::random_connected(n, &mut rng)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form perimeter (3n − e − 3 + 3H) always matches the
    /// independent hexagonal-dual boundary tracer.
    #[test]
    fn perimeter_formula_matches_tracer(sys in arb_connected()) {
        let trace = boundary::trace(&sys);
        prop_assert_eq!(trace.perimeter(), sys.perimeter());
        prop_assert_eq!(trace.hole_count(), sys.hole_count());
        // Exactly one external component for a connected configuration.
        let externals = trace.components.iter().filter(|c| !c.is_hole).count();
        prop_assert_eq!(externals, 1);
    }

    /// Lemmas 2.3 and 2.4 on hole-free configurations; the generalized
    /// identities otherwise.
    #[test]
    fn geometry_identities(sys in arb_connected()) {
        let n = sys.len() as i64;
        let e = sys.edge_count() as i64;
        let h = sys.hole_count() as i64;
        let p = sys.perimeter() as i64;
        prop_assert_eq!(p, 3 * n - e - 3 + 3 * h);
        if h == 0 {
            prop_assert_eq!(sys.triangle_count() as i64, 2 * n - p - 2);
        }
    }

    /// Perimeter bounds: Lemma 2.1 (p ≥ √n) and pmin ≤ p; hole-free
    /// configurations also satisfy p ≤ pmax.
    #[test]
    fn perimeter_bounds(sys in arb_connected()) {
        let n = sys.len();
        let p = sys.perimeter();
        if n >= 2 {
            prop_assert!((p as f64) >= (n as f64).sqrt());
        }
        prop_assert!(p >= metrics::pmin(n));
        if sys.hole_count() == 0 {
            prop_assert!(p <= metrics::pmax(n));
        }
    }

    /// The move-validity lookup tables agree with the first-principles
    /// reference implementation on random configurations.
    #[test]
    fn move_tables_match_reference(sys in arb_connected(), id_raw in any::<usize>(), d_raw in 0usize..6) {
        let id = id_raw % sys.len();
        let dir = Direction::from_index(d_raw);
        let from = sys.position(id);
        let validity = sys.check_move(from, dir);
        let occupied = |p: TriPoint| sys.is_occupied(p);
        prop_assert_eq!(validity.property1, moves::reference::property1(&occupied, from, dir));
        prop_assert_eq!(validity.property2, moves::reference::property2(&occupied, from, dir));
        // Neighbor counts agree with direct counting.
        let to = from + dir;
        prop_assert_eq!(validity.target_occupied, sys.is_occupied(to));
        let e_direct = from.neighbors().filter(|p| *p != to && sys.is_occupied(*p)).count() as u8;
        let e_to_direct = to.neighbors().filter(|p| *p != from && sys.is_occupied(*p)).count() as u8;
        prop_assert_eq!(validity.e_from, e_direct);
        prop_assert_eq!(validity.e_to, e_to_direct);
    }

    /// Applying a structurally valid move preserves connectivity (Lemma 3.1)
    /// and never increases the hole count beyond its prior value when the
    /// configuration was hole-free (Lemma 3.2).
    #[test]
    fn valid_moves_preserve_invariants(sys in arb_connected(), seq in proptest::collection::vec((any::<usize>(), 0usize..6), 1..30)) {
        let mut sys = sys;
        let initially_hole_free = sys.hole_count() == 0;
        for (id_raw, d_raw) in seq {
            let id = id_raw % sys.len();
            let dir = Direction::from_index(d_raw);
            let from = sys.position(id);
            let validity = sys.check_move(from, dir);
            if validity.is_structurally_valid() {
                let edges_before = sys.edge_count() as i64;
                sys.move_particle(id, dir).unwrap();
                prop_assert_eq!(
                    sys.edge_count() as i64 - edges_before,
                    i64::from(validity.edge_delta())
                );
                prop_assert!(sys.is_connected(), "connectivity lost");
                if initially_hole_free {
                    prop_assert_eq!(sys.hole_count(), 0, "hole created");
                }
            }
        }
        sys.assert_invariants();
    }

    /// Structurally valid moves are reversible (Lemma 3.9): after applying a
    /// move, the inverse move is structurally valid too.
    #[test]
    fn valid_moves_are_reversible(sys in arb_connected(), id_raw in any::<usize>(), d_raw in 0usize..6) {
        let mut sys = sys;
        let id = id_raw % sys.len();
        let dir = Direction::from_index(d_raw);
        let from = sys.position(id);
        let validity = sys.check_move(from, dir);
        // Lemma 3.9 is about moves between hole-free configurations.
        prop_assume!(sys.hole_count() == 0);
        prop_assume!(validity.is_structurally_valid());
        sys.move_particle(id, dir).unwrap();
        let back = sys.check_move(sys.position(id), dir.opposite());
        prop_assert!(back.is_structurally_valid(), "inverse move invalid");
        prop_assert_eq!(back.e_from, validity.e_to);
        prop_assert_eq!(back.e_to, validity.e_from);
    }

    /// Eden clusters occasionally have holes; the analysis is consistent:
    /// hole area equals the number of cells flood-fill cannot reach.
    #[test]
    fn hole_analysis_is_consistent(sys in arb_connected()) {
        let analysis = holes::analyze(&sys);
        prop_assert_eq!(analysis.hole_count, analysis.representatives.len());
        prop_assert!(analysis.hole_area >= analysis.hole_count);
        if analysis.hole_count == 0 {
            prop_assert_eq!(analysis.hole_area, 0);
        }
    }

    /// Canonical keys are translation-invariant and shape-discriminating.
    #[test]
    fn canonical_keys_identify_translations(sys in arb_connected(), dx in -50i32..50, dy in -50i32..50) {
        let translated: Vec<TriPoint> = sys.iter().map(|p| p.translated(dx, dy)).collect();
        let moved = ParticleSystem::new(translated).unwrap();
        prop_assert_eq!(sys.canonical_key(), moved.canonical_key());
    }

    /// Differential test: the grid-backed [`ParticleSystem`] and the
    /// retained TriMap-backed [`RefSystem`] stay in lock-step through random
    /// valid move sequences — identical move validity at every proposal, and
    /// identical occupancy, edge count, perimeter, hole count and canonical
    /// key at every accepted move.
    #[test]
    fn grid_system_matches_reference_model(
        sys in arb_connected(),
        seq in proptest::collection::vec((any::<usize>(), 0usize..6), 1..60),
    ) {
        let mut grid_sys = sys;
        let mut ref_sys = RefSystem::new(grid_sys.iter()).unwrap();
        for (id_raw, d_raw) in seq {
            let id = id_raw % grid_sys.len();
            let dir = Direction::from_index(d_raw);
            let from = grid_sys.position(id);
            prop_assert_eq!(from, ref_sys.position(id));
            let grid_validity = grid_sys.check_move(from, dir);
            let ref_validity = ref_sys.check_move(from, dir);
            prop_assert_eq!(grid_validity, ref_validity);
            prop_assert_eq!(
                grid_sys.neighbor_count(from),
                ref_sys.neighbor_count(from)
            );
            if grid_validity.is_structurally_valid() {
                grid_sys.move_particle(id, dir).unwrap();
                ref_sys.move_particle(id, dir).unwrap();
                prop_assert_eq!(grid_sys.edge_count(), ref_sys.edge_count());
            }
        }
        // Full end-state agreement.
        for id in 0..grid_sys.len() {
            let p = grid_sys.position(id);
            prop_assert_eq!(Some(id), ref_sys.particle_at(p));
            prop_assert_eq!(grid_sys.particle_at(p), Some(id));
        }
        let bbox = grid_sys.bounding_box().expanded(1);
        for p in bbox.iter() {
            prop_assert_eq!(grid_sys.is_occupied(p), ref_sys.is_occupied(p), "{}", p);
        }
        prop_assert_eq!(grid_sys.edge_count(), ref_sys.edge_count());
        prop_assert_eq!(grid_sys.hole_count(), ref_sys.hole_count());
        prop_assert_eq!(grid_sys.perimeter(), ref_sys.perimeter());
        prop_assert_eq!(grid_sys.canonical_key(), ref_sys.canonical_key());
        grid_sys.assert_invariants();
    }

    /// The scratch-reusing trace summary agrees with the full tracer and
    /// with the flood-fill hole analysis across random configurations.
    #[test]
    fn trace_summary_matches_analysis(sys in arb_connected()) {
        let mut trace_scratch = boundary::TraceScratch::default();
        let mut hole_scratch = holes::HoleScratch::default();
        let summary = boundary::trace_summary_with(&sys, &mut trace_scratch);
        let analysis = holes::analyze_with(&sys, &mut hole_scratch);
        prop_assert_eq!(summary.hole_count, analysis.hole_count);
        prop_assert_eq!(summary.perimeter, sys.perimeter());
        prop_assert_eq!(summary.components, analysis.hole_count + 1);
        // Reuse across configurations must not leak state.
        let summary_again = boundary::trace_summary_with(&sys, &mut trace_scratch);
        prop_assert_eq!(summary, summary_again);
    }
}
