//! The tentpole gate for intra-run sharding: sharded ≡ unsharded, bit for
//! bit, at any worker count.
//!
//! The checkerboard-synchronous runner promises that its trajectory is a
//! pure function of `(start, λ, seed, region_tiles)` — never of how many
//! workers execute a color step. These differentials pin that promise
//! three ways against the flat single-threaded reference path
//! (`run_rounds`): full snapshot bytes (configuration + every counter),
//! FNV fingerprints of the tail configuration, and the probe metrics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sops_core::sharded::{SerialExecutor, ShardedLocalRunner};
use sops_engine::testkit::{fnv, seed_corpus};
use sops_engine::PoolExecutor;
use sops_system::{shapes, ParticleSystem};

/// The differential's start shapes: a mix of sparse (line), dense
/// (hexagon), and irregular (spiral, random) geometry so region boundaries
/// land everywhere.
fn corpus_shapes(seed: u64) -> Vec<(&'static str, ParticleSystem)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    vec![
        ("line", ParticleSystem::connected(shapes::line(30)).unwrap()),
        (
            "spiral",
            ParticleSystem::connected(shapes::spiral(40)).unwrap(),
        ),
        (
            "hexagon",
            ParticleSystem::connected(shapes::hexagon(3)).unwrap(),
        ),
        (
            "random",
            ParticleSystem::connected(shapes::random_connected(36, &mut rng)).unwrap(),
        ),
    ]
}

/// A full-fidelity fingerprint of a finished run: the snapshot text covers
/// λ, seed, region size, round/activation/move counters, crash flags, and
/// every particle's exact state.
fn state_fnv(runner: &ShardedLocalRunner) -> u64 {
    fnv(runner.snapshot().as_bytes())
}

/// The primary gate: for every (shape, λ, seed) cell, runs at 1/2/4/8
/// pool workers and under the serial executor are byte-identical to the
/// flat reference — snapshots, fingerprints, and metrics alike.
#[test]
fn sharded_runs_are_byte_identical_at_1_2_4_8_workers() {
    for seed in seed_corpus(2016, 3) {
        for (shape, start) in corpus_shapes(seed) {
            for lambda in [2.5, 4.0] {
                let label = format!("{shape} λ={lambda} seed={seed}");
                let mut reference = ShardedLocalRunner::from_seed(&start, lambda, seed).unwrap();
                reference.run_rounds(80);
                reference.assert_invariants();
                let ref_snap = reference.snapshot();
                let ref_fnv = fnv(ref_snap.as_bytes());

                let mut serial = ShardedLocalRunner::from_seed(&start, lambda, seed).unwrap();
                serial.run_rounds_with(80, &SerialExecutor);
                assert_eq!(serial.snapshot(), ref_snap, "serial executor ({label})");

                for workers in [1usize, 2, 4, 8] {
                    let mut sharded = ShardedLocalRunner::from_seed(&start, lambda, seed).unwrap();
                    sharded.run_rounds_with(80, &PoolExecutor::new(workers));
                    sharded.assert_invariants();
                    assert_eq!(
                        sharded.snapshot(),
                        ref_snap,
                        "snapshot bytes differ at {workers} workers ({label})"
                    );
                    assert_eq!(
                        state_fnv(&sharded),
                        ref_fnv,
                        "fingerprint differs at {workers} workers ({label})"
                    );
                    // Metrics: the probe counters must agree exactly too.
                    assert_eq!(sharded.probes(), reference.probes(), "{label}");
                    assert_eq!(sharded.activations(), reference.activations(), "{label}");
                    assert_eq!(
                        sharded.moves_completed(),
                        reference.moves_completed(),
                        "{label}"
                    );
                    assert_eq!(
                        sharded.tail_system().positions(),
                        reference.tail_system().positions(),
                        "{label}"
                    );
                }
            }
        }
    }
}

/// Worker-count invariance holds mid-flight, not just at the end: a run
/// chunked across *different* worker counts (including the flat reference
/// path) matches a one-shot run, chunk boundary by chunk boundary.
#[test]
fn mixing_worker_counts_mid_run_preserves_bytes() {
    let start = ParticleSystem::connected(shapes::spiral(36)).unwrap();
    let mut one_shot = ShardedLocalRunner::from_seed(&start, 3.5, 77).unwrap();
    let mut mixed = ShardedLocalRunner::from_seed(&start, 3.5, 77).unwrap();
    let schedule: [(u64, usize); 5] = [(13, 1), (7, 4), (20, 0), (1, 8), (19, 2)];
    for (rounds, workers) in schedule {
        one_shot.run_rounds(rounds);
        if workers == 0 {
            mixed.run_rounds(rounds); // the flat reference path mid-stream
        } else {
            mixed.run_rounds_with(rounds, &PoolExecutor::new(workers));
        }
        assert_eq!(
            mixed.snapshot(),
            one_shot.snapshot(),
            "divergence after the ({rounds} rounds, {workers} workers) chunk"
        );
    }
}

/// Crashed particles freeze in place but keep blocking their sites — and
/// the crash set must not perturb worker-count invariance (crashed ids are
/// skipped identically in every region's schedule).
#[test]
fn crashes_preserve_worker_count_invariance() {
    let start = ParticleSystem::connected(shapes::line(24)).unwrap();
    let run = |workers: Option<usize>| -> String {
        let mut runner = ShardedLocalRunner::from_seed(&start, 4.0, 9).unwrap();
        runner.run_rounds(10);
        for id in [0, 5, 11, 23] {
            runner.crash(id);
        }
        match workers {
            None => runner.run_rounds(70),
            Some(w) => runner.run_rounds_with(70, &PoolExecutor::new(w)),
        }
        runner.assert_invariants();
        runner.snapshot()
    };
    let reference = run(None);
    for workers in [1, 2, 4, 8] {
        assert_eq!(run(Some(workers)), reference, "{workers} workers");
    }
}

/// Snapshot portability: state captured from a sharded run restores and
/// continues identically under any executor — the snapshot carries no
/// worker count to disagree about.
#[test]
fn snapshots_restore_across_worker_counts() {
    let start = ParticleSystem::connected(shapes::hexagon(3)).unwrap();
    let mut origin = ShardedLocalRunner::from_seed(&start, 5.0, 4).unwrap();
    origin.run_rounds_with(40, &PoolExecutor::new(4));
    let snap = origin.snapshot();
    origin.run_rounds(40); // reference continuation
    let final_snap = origin.snapshot();
    for workers in [1, 2, 8] {
        let mut resumed = ShardedLocalRunner::restore(&snap).unwrap();
        resumed.run_rounds_with(40, &PoolExecutor::new(workers));
        assert_eq!(
            resumed.snapshot(),
            final_snap,
            "restored run diverged at {workers} workers"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized differential: arbitrary connected systems, λ, seeds,
    /// region sizes and a worker count — sharded equals flat, always.
    #[test]
    fn random_systems_are_worker_count_invariant(
        n in 4usize..40,
        shape_seed in any::<u64>(),
        seed in any::<u64>(),
        lambda_eighths in 9u32..48,
        region_tiles in 1u32..4,
        workers in 1usize..9,
    ) {
        let lambda = f64::from(lambda_eighths) / 8.0;
        let mut rng = StdRng::seed_from_u64(shape_seed);
        let start =
            ParticleSystem::connected(shapes::random_connected(n, &mut rng)).unwrap();
        let mut reference =
            ShardedLocalRunner::with_region_tiles(&start, lambda, seed, region_tiles).unwrap();
        reference.run_rounds(30);
        let mut sharded =
            ShardedLocalRunner::with_region_tiles(&start, lambda, seed, region_tiles).unwrap();
        sharded.run_rounds_with(30, &PoolExecutor::new(workers));
        prop_assert_eq!(sharded.snapshot(), reference.snapshot());
    }
}
