//! The Markov chain `M` for compression (Algorithm `M`, Section 3.1).
//!
//! One step of `M`, starting from a connected configuration of `n`
//! contracted particles:
//!
//! 1. Select a particle `P` uniformly at random; let `ℓ` be its location.
//! 2. Choose a neighboring location `ℓ′` and `q ∈ (0, 1)` uniformly.
//! 3. If `ℓ′` is unoccupied, `P` moves to `ℓ′` iff (1) `e ≠ 5`, (2) `(ℓ, ℓ′)`
//!    satisfies Property 1 or Property 2, and (3) `q < λ^(e′−e)`.
//!
//! The chain keeps the system connected (Lemma 3.1), eventually eliminates
//! holes and never re-creates them (Lemmas 3.2 and 3.8), is eventually
//! ergodic on the hole-free space `Ω*` (Corollary 3.11), and converges to
//! `π(σ) = λ^{e(σ)}/Z` (Lemma 3.13). For `λ > 2 + √2` the stationary
//! distribution is α-compressed with all but exponentially small probability
//! (Theorem 4.5); for `λ < 2.17` it is β-expanded (Theorem 5.7).
//!
//! The Metropolis exponent is pluggable: the chain is generic over a
//! [`Hamiltonian`] `H`, accepting with `min(1, λ^Δ)` for
//! `Δ = H(σ′) − H(σ)`, and converging to `π(σ) ∝ λ^{H(σ)}` (the structural
//! move conditions — and hence Lemmas 3.1/3.2 — do not depend on `H`). The
//! default [`EdgeCount`] instance *is* the paper's chain, bit for bit.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_lattice::Direction;
use sops_system::{metrics, ParticleSystem, SystemError};

use crate::hamiltonian::{EdgeCount, Hamiltonian, MoveContext};
use crate::measure::HoleTracker;
use crate::probes::ChainProbes;
use crate::snapshot::{self, SnapshotError};

/// Errors from constructing a [`CompressionChain`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ChainError {
    /// The bias parameter must be finite and strictly positive.
    InvalidLambda(f64),
    /// The starting configuration must be connected (Section 3.1).
    NotConnected,
    /// The Hamiltonian rejected the configuration (missing or out-of-range
    /// per-particle state, or an unusable delta range).
    Hamiltonian(String),
    /// The underlying configuration was invalid.
    System(SystemError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InvalidLambda(l) => {
                write!(f, "bias parameter must be finite and positive, got {l}")
            }
            ChainError::NotConnected => write!(f, "starting configuration must be connected"),
            ChainError::Hamiltonian(why) => write!(f, "hamiltonian rejected configuration: {why}"),
            ChainError::System(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for ChainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChainError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemError> for ChainError {
    fn from(e: SystemError) -> ChainError {
        ChainError::System(e)
    }
}

/// The outcome of a single step of `M`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The particle moved to the chosen neighboring location.
    Moved {
        /// The particle that moved.
        id: usize,
        /// The direction it moved in.
        dir: Direction,
        /// The resulting change `Δ = H(σ′) − H(σ)` in the Hamiltonian
        /// energy (the edge-count change for the default [`EdgeCount`]).
        delta: i32,
    },
    /// The chosen location was occupied; no move (Step 3 guard).
    TargetOccupied,
    /// The selected particle is crashed and cannot act (Section 3.3).
    CrashedParticle,
    /// Condition (1) failed: the particle has five neighbors.
    FiveNeighborBlocked,
    /// Condition (2) failed: neither Property 1 nor Property 2 holds.
    PropertyViolated,
    /// Condition (3) failed: the Metropolis draw rejected the move.
    MetropolisRejected,
}

/// Aggregate counts of step outcomes, for acceptance-rate diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepCounts {
    /// Steps that moved a particle.
    pub moved: u64,
    /// Steps rejected because the target was occupied.
    pub target_occupied: u64,
    /// Steps rejected because the selected particle was crashed.
    pub crashed: u64,
    /// Steps rejected by the five-neighbor rule.
    pub five_neighbor: u64,
    /// Steps rejected because Properties 1/2 both failed.
    pub property: u64,
    /// Steps rejected by the Metropolis filter.
    pub metropolis: u64,
}

impl StepCounts {
    /// Total number of steps recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.moved
            + self.target_occupied
            + self.crashed
            + self.five_neighbor
            + self.property
            + self.metropolis
    }

    /// Fraction of steps that moved a particle.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.moved as f64 / total as f64
    }

    fn record(&mut self, outcome: StepOutcome) {
        match outcome {
            StepOutcome::Moved { .. } => self.moved += 1,
            StepOutcome::TargetOccupied => self.target_occupied += 1,
            StepOutcome::CrashedParticle => self.crashed += 1,
            StepOutcome::FiveNeighborBlocked => self.five_neighbor += 1,
            StepOutcome::PropertyViolated => self.property += 1,
            StepOutcome::MetropolisRejected => self.metropolis += 1,
        }
    }
}

/// A sampled point of a chain trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// Chain step at which the sample was taken.
    pub step: u64,
    /// Configuration edge count `e(σ)`.
    pub edges: u64,
    /// Configuration perimeter `p(σ)`.
    pub perimeter: u64,
    /// Number of holes.
    pub holes: usize,
    /// Compression ratio `p / pmin` (∞ when `pmin = 0`).
    pub alpha: f64,
    /// Expansion ratio `p / pmax` (NaN when `pmax = 0`).
    pub beta: f64,
}

/// The Markov chain `M`, biased by `λ` toward configurations with higher
/// Hamiltonian energy (more edges, under the default [`EdgeCount`]).
///
/// Generic over the random source and the [`Hamiltonian`]; the
/// [`CompressionChain::from_seed`] convenience constructor uses a seeded
/// [`StdRng`] for exact reproducibility, and
/// [`CompressionChain::with_hamiltonian`] selects a non-default energy.
#[derive(Clone, Debug)]
pub struct CompressionChain<R: Rng = StdRng, H: Hamiltonian = EdgeCount> {
    sys: ParticleSystem,
    lambda: f64,
    hamiltonian: H,
    /// `bias[i]` = `λ^(delta_min + i)` for deltas in
    /// `[delta_min, delta_max]` (the `λ^Δ` of the Metropolis filter).
    bias: Vec<f64>,
    /// Cached `hamiltonian.delta_min()` — the index offset into `bias`.
    delta_min: i32,
    rng: R,
    steps: u64,
    counts: StepCounts,
    /// Telemetry side channel: never serialized, never read by the
    /// algorithm (see [`crate::probes`] for the determinism contract).
    probes: ChainProbes,
    /// Hole-free latch + reusable trace scratch (shared implementation
    /// with the KMC sampler; scratch is transient, not part of snapshots).
    measure: HoleTracker,
    crashed: Vec<bool>,
    crashed_count: usize,
    validate: bool,
}

impl CompressionChain<StdRng> {
    /// Builds an edge-count chain with a [`StdRng`] seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`CompressionChain::new`].
    pub fn from_seed(
        sys: ParticleSystem,
        lambda: f64,
        seed: u64,
    ) -> Result<CompressionChain<StdRng>, ChainError> {
        CompressionChain::new(sys, lambda, StdRng::seed_from_u64(seed))
    }
}

impl<H: Hamiltonian> CompressionChain<StdRng, H> {
    /// Builds a chain over `hamiltonian` with a [`StdRng`] seeded from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`CompressionChain::with_hamiltonian`].
    pub fn from_seed_with(
        sys: ParticleSystem,
        lambda: f64,
        seed: u64,
        hamiltonian: H,
    ) -> Result<CompressionChain<StdRng, H>, ChainError> {
        CompressionChain::with_hamiltonian(sys, lambda, StdRng::seed_from_u64(seed), hamiltonian)
    }

    /// Serializes the full chain state — configuration, λ, counters, crash
    /// set and exact RNG state — as a compact text snapshot.
    ///
    /// [`CompressionChain::restore`] rebuilds a chain whose continued
    /// trajectory is bitwise identical to running this one uninterrupted;
    /// see [`crate::snapshot`] for the format and guarantees. The
    /// `hamiltonian` and `orientations` lines appear only for non-default
    /// Hamiltonians / oriented configurations, keeping default snapshots
    /// byte-identical to the pre-trait format.
    #[must_use]
    pub fn snapshot(&self) -> String {
        use core::fmt::Write as _;
        let c = self.counts;
        let crashed: Vec<String> = self
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(id, _)| id.to_string())
            .collect();
        let mut s = String::from("sops-chain-snapshot v1\n");
        let _ = writeln!(s, "lambda={}", snapshot::f64_to_hex(self.lambda));
        let name = self.hamiltonian.name();
        if name != "edges" {
            let _ = writeln!(s, "hamiltonian={name}");
        }
        let _ = writeln!(s, "steps={}", self.steps);
        let _ = writeln!(
            s,
            "counts={},{},{},{},{},{}",
            c.moved, c.target_occupied, c.crashed, c.five_neighbor, c.property, c.metropolis
        );
        let _ = writeln!(s, "hole_free={}", u8::from(self.measure.latched()));
        let _ = writeln!(s, "validate={}", u8::from(self.validate));
        let _ = writeln!(s, "crashed={}", crashed.join(","));
        let _ = writeln!(s, "rng={}", snapshot::rng_to_string(&self.rng));
        let _ = writeln!(
            s,
            "positions={}",
            snapshot::points_to_string(self.sys.positions().iter().copied())
        );
        if let Some(orientations) = self.sys.orientations() {
            let _ = writeln!(s, "orientations={}", snapshot::u8s_to_string(orientations));
        }
        s
    }

    /// Rebuilds a chain from a [`CompressionChain::snapshot`] text.
    ///
    /// The snapshot's `hamiltonian` line (default: `edges`) must describe
    /// an instance of `H` — restoring a snapshot under the wrong
    /// Hamiltonian type is rejected rather than silently reinterpreted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the text is malformed or describes an invalid
    /// state (duplicate positions, disconnected configuration, out-of-range
    /// crash ids, bad λ, a Hamiltonian `H` cannot parse).
    pub fn restore(text: &str) -> Result<CompressionChain<StdRng, H>, SnapshotError> {
        let fields = snapshot::Fields::parse(text, "sops-chain-snapshot v1")?;
        let positions = snapshot::points_from_string("positions", fields.get("positions")?)?;
        let mut sys = ParticleSystem::connected(positions)
            .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        sys = snapshot::attach_orientations(sys, &fields)?;
        let hamiltonian = snapshot::hamiltonian_from_fields::<H>(&fields)?;
        let lambda = fields.parse_f64_bits("lambda")?;
        let rng = snapshot::rng_from_string("rng", fields.get("rng")?)?;
        let mut chain = CompressionChain::with_hamiltonian(sys, lambda, rng, hamiltonian)
            .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        chain.steps = fields.parse_num("steps")?;
        let counts: Vec<u64> = fields.parse_list("counts")?;
        let [moved, target_occupied, crashed, five_neighbor, property, metropolis] = counts[..]
        else {
            return Err(SnapshotError::BadField {
                field: "counts",
                value: fields.get("counts")?.to_string(),
            });
        };
        chain.counts = StepCounts {
            moved,
            target_occupied,
            crashed,
            five_neighbor,
            property,
            metropolis,
        };
        // The hole-free flag is lazily monotone; restoring the stored value
        // (rather than recomputing) preserves the exact observable behavior.
        chain
            .measure
            .set_latched(fields.parse_num::<u8>("hole_free")? != 0);
        chain.validate = fields.parse_num::<u8>("validate")? != 0;
        for id in fields.parse_list::<usize>("crashed")? {
            if id >= chain.crashed.len() {
                return Err(SnapshotError::Invalid(format!(
                    "crashed id {id} out of range for {} particles",
                    chain.crashed.len()
                )));
            }
            chain.crash(id);
        }
        Ok(chain)
    }
}

impl<R: Rng> CompressionChain<R> {
    /// Builds the paper's edge-count chain from a connected starting
    /// configuration `σ₀` and bias `λ`.
    ///
    /// `λ > 1` biases particles toward having more neighbors; the paper's
    /// main results require `λ > 2 + √2` for compression and show
    /// `0 < λ < 2.17` yields expansion instead. Any finite positive `λ` is
    /// accepted.
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] for non-finite or non-positive `λ`,
    /// [`ChainError::NotConnected`] for a disconnected start.
    pub fn new(
        sys: ParticleSystem,
        lambda: f64,
        rng: R,
    ) -> Result<CompressionChain<R>, ChainError> {
        CompressionChain::with_hamiltonian(sys, lambda, rng, EdgeCount)
    }
}

impl<R: Rng, H: Hamiltonian> CompressionChain<R, H> {
    /// Builds the chain over an explicit [`Hamiltonian`]: the Metropolis
    /// filter accepts with `min(1, λ^Δ)` for `Δ = H(σ′) − H(σ)`, so the
    /// stationary distribution becomes `π(σ) ∝ λ^{H(σ)}` over the same
    /// hole-free connected state space.
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] for non-finite or non-positive `λ`,
    /// [`ChainError::NotConnected`] for a disconnected start, and
    /// [`ChainError::Hamiltonian`] when the Hamiltonian rejects the
    /// configuration (e.g. [`crate::hamiltonian::Alignment`] without
    /// orientations) or declares an unusable delta range.
    pub fn with_hamiltonian(
        sys: ParticleSystem,
        lambda: f64,
        rng: R,
        hamiltonian: H,
    ) -> Result<CompressionChain<R, H>, ChainError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ChainError::InvalidLambda(lambda));
        }
        if !sys.is_connected() {
            return Err(ChainError::NotConnected);
        }
        hamiltonian
            .validate(&sys)
            .map_err(ChainError::Hamiltonian)?;
        let (delta_min, delta_max) = (hamiltonian.delta_min(), hamiltonian.delta_max());
        if delta_min > delta_max || delta_max.saturating_sub(delta_min) > 254 {
            return Err(ChainError::Hamiltonian(format!(
                "unusable delta range [{delta_min}, {delta_max}]"
            )));
        }
        let bias: Vec<f64> = (delta_min..=delta_max).map(|d| lambda.powi(d)).collect();
        let hole_free = sys.hole_count() == 0;
        let n = sys.len();
        Ok(CompressionChain {
            sys,
            lambda,
            hamiltonian,
            bias,
            delta_min,
            rng,
            steps: 0,
            counts: StepCounts::default(),
            probes: ChainProbes::default(),
            measure: HoleTracker::new(hole_free),
            crashed: vec![false; n],
            crashed_count: 0,
            validate: false,
        })
    }

    /// The bias parameter `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The Hamiltonian driving the Metropolis filter.
    #[must_use]
    pub fn hamiltonian(&self) -> &H {
        &self.hamiltonian
    }

    /// The current configuration.
    #[must_use]
    pub fn system(&self) -> &ParticleSystem {
        &self.sys
    }

    /// Consumes the chain and returns the final configuration.
    #[must_use]
    pub fn into_system(self) -> ParticleSystem {
        self.sys
    }

    /// Number of steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Outcome counts since construction.
    #[must_use]
    pub fn counts(&self) -> StepCounts {
        self.counts
    }

    /// Telemetry probes accumulated since construction (or since the last
    /// restore — probes are not part of snapshots).
    #[must_use]
    pub fn probes(&self) -> &ChainProbes {
        &self.probes
    }

    /// Enables per-move invariant validation (connectivity and
    /// hole-freeness re-checked after every accepted move). Expensive;
    /// intended for tests and the invariant experiment (E9).
    pub fn set_validation(&mut self, enabled: bool) {
        self.validate = enabled;
    }

    /// Marks a particle as crashed: it stays in place forever and acts as a
    /// fixed obstacle (Section 3.3). Returns the previous crash state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn crash(&mut self, id: usize) -> bool {
        let was = self.crashed[id];
        if !was {
            self.crashed[id] = true;
            self.crashed_count += 1;
        }
        was
    }

    /// Number of crashed particles.
    #[must_use]
    pub fn crashed_count(&self) -> usize {
        self.crashed_count
    }

    /// `true` once the configuration is hole-free; monotone by Lemma 3.2.
    ///
    /// Lazily recomputed while holes remain, via an allocation-free
    /// boundary trace over reused scratch (the chain keeps the
    /// configuration connected — Lemma 3.1 — which the tracer requires).
    pub fn is_hole_free(&mut self) -> bool {
        self.measure.is_hole_free(&self.sys)
    }

    /// The current perimeter `p(σ)`.
    ///
    /// O(1) once the chain has reached the hole-free space `Ω*`; before
    /// that, one scratch-backed boundary trace serves both the monotone
    /// hole-free latch and the hole count of the perimeter formula (the
    /// latch and the measurement used to flood-fill separately, tracing the
    /// boundary twice per pre-latch check).
    #[must_use = "perimeter is a measurement; ignoring it wastes a flood fill"]
    pub fn perimeter(&mut self) -> u64 {
        self.measure.perimeter(&self.sys)
    }

    /// Executes one step of `M` (Algorithm `M`, Steps 1–8).
    pub fn step(&mut self) -> StepOutcome {
        self.steps += 1;
        let n = self.sys.len();
        // Step 1: uniform particle.
        let id = self.rng.gen_range(0..n);
        // Step 2: uniform neighboring location and uniform q ∈ (0, 1).
        // (q is drawn lazily below; the acceptance law is identical.)
        let dir = Direction::ALL[self.rng.gen_range(0..6usize)];
        let outcome = self.try_move(id, dir);
        self.counts.record(outcome);
        outcome
    }

    fn try_move(&mut self, id: usize, dir: Direction) -> StepOutcome {
        if self.crashed[id] {
            return StepOutcome::CrashedParticle;
        }
        let from = self.sys.position(id);
        // Occupied targets (the most common rejection) need one occupancy
        // bit, not the full ring mask; no RNG is consumed either way.
        if self.sys.is_occupied(from + dir) {
            return StepOutcome::TargetOccupied;
        }
        let validity = self.sys.check_move(from, dir);
        if validity.five_neighbor_blocked() {
            return StepOutcome::FiveNeighborBlocked;
        }
        if !(validity.property1 || validity.property2) {
            return StepOutcome::PropertyViolated;
        }
        // Condition (3): Metropolis filter with probability min(1, λ^Δ),
        // Δ the Hamiltonian's local energy change (e′ − e by default).
        let ctx = MoveContext {
            sys: &self.sys,
            id,
            from,
            dir,
            validity,
        };
        let delta = self.hamiltonian.delta(&ctx);
        debug_assert!(
            (0..self.bias.len() as i32).contains(&(delta - self.delta_min)),
            "hamiltonian delta {delta} violates its declared range"
        );
        let threshold = self.bias[(delta - self.delta_min) as usize];
        if threshold < 1.0 {
            let q: f64 = self.rng.gen();
            if q >= threshold {
                return StepOutcome::MetropolisRejected;
            }
        }
        self.sys
            .move_particle(id, dir)
            .expect("validated move must apply");
        if self.validate {
            assert!(self.sys.is_connected(), "Lemma 3.1 violated: disconnected");
            if self.measure.latched() {
                assert_eq!(self.sys.hole_count(), 0, "Lemma 3.2 violated: hole");
            }
        }
        self.probes
            .accepted_delta
            .record((delta - self.delta_min) as u64);
        StepOutcome::Moved { id, dir, delta }
    }

    /// Runs `steps` steps and returns the number of accepted moves.
    pub fn run(&mut self, steps: u64) -> u64 {
        let before = self.counts.moved;
        for _ in 0..steps {
            self.step();
        }
        self.counts.moved - before
    }

    /// Runs until the configuration is α-compressed (`p ≤ α · pmin`) or
    /// `max_steps` elapse; returns the step count at first hit.
    ///
    /// Checks the perimeter every `n` steps (one expected activation per
    /// particle).
    pub fn run_until_compressed(&mut self, alpha: f64, max_steps: u64) -> Option<u64> {
        let n = self.sys.len() as u64;
        let target = alpha * metrics::pmin(self.sys.len()) as f64;
        let check_every = n.max(1);
        let start = self.steps;
        loop {
            if self.perimeter() as f64 <= target {
                return Some(self.steps);
            }
            if self.steps - start >= max_steps {
                return None;
            }
            for _ in 0..check_every {
                self.step();
            }
        }
    }

    /// Samples the current trajectory point (perimeter, edges, ratios).
    ///
    /// Allocation-free in the steady state: the hole count comes from the
    /// reused boundary-trace scratch (and is skipped entirely once the
    /// chain is known hole-free); one trace serves both the monotone
    /// hole-free latch and the sample.
    pub fn sample(&mut self) -> TrajectoryPoint {
        self.measure.sample(&self.sys, self.steps)
    }

    /// Runs the chain, sampling every `interval` steps, for `total` steps.
    pub fn trajectory(&mut self, total: u64, interval: u64) -> Vec<TrajectoryPoint> {
        let interval = interval.max(1);
        let mut points = vec![self.sample()];
        let mut done = 0u64;
        while done < total {
            let burst = interval.min(total - done);
            self.run(burst);
            done += burst;
            points.push(self.sample());
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_system::shapes;

    fn line_chain(n: usize, lambda: f64, seed: u64) -> CompressionChain {
        let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
        CompressionChain::from_seed(sys, lambda, seed).unwrap()
    }

    #[test]
    fn rejects_bad_lambda() {
        let sys = ParticleSystem::connected(shapes::line(3)).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = CompressionChain::from_seed(sys.clone(), bad, 0).unwrap_err();
            assert!(matches!(err, ChainError::InvalidLambda(_)), "{bad}");
        }
    }

    #[test]
    fn rejects_disconnected_start() {
        let sys = ParticleSystem::new([
            sops_lattice::TriPoint::new(0, 0),
            sops_lattice::TriPoint::new(9, 9),
        ])
        .unwrap();
        let err = CompressionChain::from_seed(sys, 2.0, 0).unwrap_err();
        assert_eq!(err, ChainError::NotConnected);
    }

    #[test]
    fn steps_are_counted_and_reproducible() {
        let mut a = line_chain(10, 4.0, 42);
        let mut b = line_chain(10, 4.0, 42);
        a.run(5000);
        b.run(5000);
        assert_eq!(a.steps(), 5000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().canonical_key(), b.system().canonical_key());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = line_chain(10, 4.0, 1);
        let mut b = line_chain(10, 4.0, 2);
        a.run(5000);
        b.run(5000);
        // Overwhelmingly likely to differ.
        assert_ne!(a.counts(), b.counts());
    }

    #[test]
    fn invariants_hold_with_validation() {
        let mut chain = line_chain(12, 4.0, 7);
        chain.set_validation(true);
        chain.run(20_000);
        chain.system().assert_invariants();
        assert!(chain.system().is_connected());
        assert!(chain.is_hole_free());
    }

    #[test]
    fn compression_happens_at_high_lambda() {
        let mut chain = line_chain(20, 5.0, 3);
        chain.run(200_000);
        let p = chain.perimeter();
        assert!(
            p <= 2 * metrics::pmin(20),
            "perimeter {p} should approach pmin = {}",
            metrics::pmin(20)
        );
    }

    #[test]
    fn hole_elimination_from_annulus() {
        let sys = ParticleSystem::connected(shapes::annulus(3)).unwrap();
        let mut chain = CompressionChain::from_seed(sys, 4.0, 9).unwrap();
        assert!(!chain.is_hole_free());
        chain.run(200_000);
        assert!(chain.is_hole_free(), "holes must eventually vanish");
        // After elimination the perimeter formula is consistent with a full
        // hole analysis.
        assert_eq!(chain.perimeter(), chain.system().perimeter());
    }

    #[test]
    fn crashed_particles_never_move() {
        let mut chain = line_chain(10, 4.0, 5);
        let frozen = chain.system().position(0);
        chain.crash(0);
        assert!(chain.crash(0), "second crash reports prior state");
        assert_eq!(chain.crashed_count(), 1);
        chain.run(20_000);
        assert_eq!(chain.system().position(0), frozen);
        assert!(chain.counts().crashed > 0);
    }

    #[test]
    fn run_until_compressed_reports_first_hit() {
        let mut chain = line_chain(15, 6.0, 11);
        let hit = chain.run_until_compressed(1.8, 2_000_000);
        assert!(hit.is_some(), "λ=6 must compress a 15-particle line");
        let p = chain.perimeter() as f64;
        assert!(p <= 1.8 * metrics::pmin(15) as f64);
    }

    #[test]
    fn trajectory_samples_are_monotone_in_step() {
        let mut chain = line_chain(10, 2.0, 13);
        let traj = chain.trajectory(1000, 100);
        assert_eq!(traj.len(), 11);
        for w in traj.windows(2) {
            assert!(w[0].step < w[1].step);
        }
        // Perimeter and edges always satisfy the hole-free identity once
        // hole-free (a line is hole-free from the start).
        for pt in traj {
            assert_eq!(pt.holes, 0);
            assert_eq!(pt.edges, 3 * 10 - pt.perimeter - 3);
        }
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let mut a = line_chain(12, 4.0, 99);
        a.run(3_333);
        let snap = a.snapshot();
        let mut b: CompressionChain = CompressionChain::restore(&snap).unwrap();
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.counts(), b.counts());
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().positions(), b.system().positions());
    }

    #[test]
    fn snapshot_preserves_crash_set_and_flags() {
        let mut a = line_chain(10, 3.0, 4);
        a.crash(2);
        a.crash(7);
        a.set_validation(true);
        a.run(1_000);
        let b: CompressionChain = CompressionChain::restore(&a.snapshot()).unwrap();
        assert_eq!(b.crashed_count(), 2);
        assert!((b.lambda() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        use crate::snapshot::SnapshotError;
        assert!(matches!(
            CompressionChain::<StdRng>::restore("not a snapshot").unwrap_err(),
            SnapshotError::WrongHeader { .. }
        ));
        let valid = line_chain(5, 2.0, 1).snapshot();
        let truncated: String = valid
            .lines()
            .filter(|l| !l.starts_with("rng="))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            CompressionChain::<StdRng>::restore(&truncated).unwrap_err(),
            SnapshotError::MissingField("rng")
        ));
    }

    #[test]
    fn alignment_chain_runs_validates_and_snapshots() {
        use crate::hamiltonian::Alignment;
        let sys = ParticleSystem::connected(shapes::line(12))
            .unwrap()
            .with_random_orientations(3, 5);
        let mut a = CompressionChain::from_seed_with(sys, 4.0, 7, Alignment::new(3)).unwrap();
        a.set_validation(true);
        a.run(20_000);
        assert!(a.system().is_connected());
        assert!(a.counts().moved > 0);
        let snap = a.snapshot();
        assert!(snap.contains("hamiltonian=alignment:3"));
        assert!(snap.contains("orientations="));
        let mut b: CompressionChain<StdRng, Alignment> = CompressionChain::restore(&snap).unwrap();
        assert_eq!(b.hamiltonian(), &Alignment::new(3));
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().positions(), b.system().positions());
        assert_eq!(a.system().orientations(), b.system().orientations());
        // Restoring under the wrong Hamiltonian type is an error, not a
        // silent reinterpretation.
        assert!(matches!(
            CompressionChain::<StdRng>::restore(&snap).unwrap_err(),
            crate::snapshot::SnapshotError::Invalid(_)
        ));
    }

    #[test]
    fn alignment_requires_orientations() {
        use crate::hamiltonian::Alignment;
        let sys = ParticleSystem::connected(shapes::line(5)).unwrap();
        let err = CompressionChain::from_seed_with(sys, 2.0, 0, Alignment::new(3)).unwrap_err();
        assert!(matches!(err, ChainError::Hamiltonian(_)));
    }

    #[test]
    fn acceptance_rate_is_sane() {
        let mut chain = line_chain(10, 4.0, 17);
        chain.run(10_000);
        let rate = chain.counts().acceptance_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        assert_eq!(chain.counts().total(), 10_000);
    }
}
