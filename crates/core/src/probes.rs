//! Hot-loop telemetry probes for the three samplers.
//!
//! Probes are plain [`sops_telemetry`] data living *beside* the simulation
//! state, never inside it: they consume no randomness, are excluded from
//! snapshots (a restored sampler starts with fresh probes), and never
//! influence a single branch of the algorithms. That is the determinism
//! contract — trajectories, snapshots and RNG streams are byte-identical
//! whether anything ever reads the probes or not — and it is why they are
//! cheap enough to stay on unconditionally: each record is one histogram
//! bucket increment or one counter add, only on *accepted* moves (or once
//! per activation for the local algorithm), never per rejected step.
//!
//! The engine drains probes at job boundaries into its sweep-wide registry;
//! standalone users can read them directly via the samplers' `probes()`
//! accessors.

use sops_telemetry::Histogram;

/// Probes of [`crate::chain::CompressionChain`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainProbes {
    /// Energy delta `Δ − delta_min` of each accepted move (shifted to be
    /// nonnegative; subtract `delta_min` of the Hamiltonian — 5 by default —
    /// to recover `Δ`). Exact: the shifted deltas are below 16.
    pub accepted_delta: Histogram,
}

/// Probes of [`crate::kmc::KmcChain`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KmcProbes {
    /// Rejected steps skipped by each *realized* geometric dwell (pending
    /// dwells cut short by a budget or discarded by a crash never count,
    /// matching [`crate::kmc::KmcCounts::max_jump`]).
    pub dwell: Histogram,
    /// Pair-mask revalidations per accepted move: the number of
    /// (particle, direction) acceptance masses recomputed in the move's
    /// O(1) neighborhood. The paper-level bound is ≤ 24 sites × ≤ 6
    /// directions; the observed distribution is what this histogram holds.
    pub revalidation_fanout: Histogram,
}

/// Probes of [`crate::local::LocalRunner`]: activation outcome counts.
///
/// Unlike [`crate::chain::StepCounts`] these are *not* part of any
/// snapshot or equality contract — they exist purely for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalProbes {
    /// Contracted particles that expanded into an adjacent empty location.
    pub expanded: u64,
    /// Expanded particles that completed their move (forward contraction).
    pub contracted_forward: u64,
    /// Expanded particles that aborted their move (backward contraction).
    pub contracted_back: u64,
    /// Activations where a contracted particle could not expand.
    pub idle: u64,
}

impl LocalProbes {
    /// Total recorded activations (crashed activations are not probed).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.expanded + self.contracted_forward + self.contracted_back + self.idle
    }
}
