//! The paper's contribution: Markov chain `M` and local algorithm `A`.
//!
//! This crate implements both faces of the compression algorithm of Cannon,
//! Daymude, Randall and Richa (PODC 2016):
//!
//! * [`chain::CompressionChain`] — the centralized Markov chain `M`
//!   (Section 3.1): pick a particle and a direction uniformly at random,
//!   check the five-neighbor rule and Properties 1/2, then accept with the
//!   Metropolis probability `min(1, λ^(e′−e))`. Its stationary distribution
//!   is `π(σ) ∝ λ^{e(σ)}` over hole-free connected configurations
//!   (Lemma 3.13).
//! * [`kmc::KmcChain`] — a rejection-free (kinetic Monte Carlo) sampler of
//!   the same chain: geometric dwells between accepted moves plus a
//!   proportional move pick, equal in law to `M` at step granularity but
//!   doing work per *accepted* move only — the right tool at or near the
//!   compressed equilibrium, where almost every naive step rejects.
//! * [`local::LocalRunner`] — the fully distributed, local, asynchronous
//!   algorithm `A` (Section 3.2): each particle runs on its own Poisson
//!   clock, moves in decoupled expand/contract phases, and serializes its
//!   neighborhood with a single `flag` bit. The runner is a discrete-event
//!   simulator whose particle logic reads only bounded neighborhood views.
//! * [`sharded::ShardedLocalRunner`] — a checkerboard-synchronous variant of
//!   `A` built for intra-run sharding: rounds are scheduled over the 4-color
//!   region checkerboard of `sops_lattice::RegionMap`, each region draws from
//!   its own SplitMix64-salted seed stream, and a [`sharded::StepExecutor`]
//!   may run same-color regions concurrently — results are byte-identical at
//!   any worker count.
//!
//! Both support crash-fault injection (Section 3.3) via [`chain`]- and
//! [`local`]-level APIs.
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sops_core::chain::CompressionChain;
//! use sops_system::{shapes, ParticleSystem};
//!
//! let start = ParticleSystem::connected(shapes::line(20)).unwrap();
//! let mut chain =
//!     CompressionChain::new(start, 4.0, StdRng::seed_from_u64(1)).unwrap();
//! chain.run(50_000);
//! // λ = 4 > 2 + √2: the system compresses well below the line's perimeter.
//! assert!(chain.perimeter() < 38);
//! assert!(chain.system().is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod hamiltonian;
pub mod kmc;
pub mod local;
mod measure;
pub mod probes;
pub mod sharded;
pub mod snapshot;

pub use chain::{ChainError, CompressionChain, StepCounts, StepOutcome, TrajectoryPoint};
pub use hamiltonian::{Alignment, EdgeCount, Hamiltonian, HamiltonianSpec, MoveContext};
pub use kmc::{KmcChain, KmcCounts};
pub use local::LocalRunner;
pub use probes::{ChainProbes, KmcProbes, LocalProbes};
pub use sharded::ShardedLocalRunner;
pub use snapshot::SnapshotError;

/// The compression threshold `2 + √2 ≈ 3.414`: Theorem 4.5 proves
/// α-compression at stationarity for every `λ` above this value.
pub const LAMBDA_COMPRESSION: f64 = 2.0 + core::f64::consts::SQRT_2;

/// The expansion threshold `(2·N₅₀)^(1/100) ≈ 2.1720`: Theorem 5.7 proves
/// β-expansion at stationarity for every `λ` below this value
/// (Corollary 5.8).
pub const LAMBDA_EXPANSION: f64 = 2.172_033_328_925_038_5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_closed_forms() {
        assert!((LAMBDA_COMPRESSION - (2.0 + 2.0f64.sqrt())).abs() < 1e-12);
        // (2 · N50)^(1/100) with N50 from Lemma 5.5.
        let n50 = 2.430_068_453_031_180_3e33_f64;
        let x = (2.0 * n50).powf(0.01);
        assert!((LAMBDA_EXPANSION - x).abs() < 1e-9, "{x}");
    }
}
