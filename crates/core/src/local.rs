//! The local, distributed, asynchronous algorithm `A` (Section 3.2).
//!
//! Each particle runs the paper's Algorithm `A` independently:
//!
//! * **Contracted** at `ℓ`: pick a uniformly random neighboring location
//!   `ℓ′`; if `ℓ′` is unoccupied and no neighbor is expanded, expand to
//!   occupy both `ℓ` (tail) and `ℓ′` (head), then set `flag` to whether no
//!   *other* expanded particle is adjacent to `ℓ` or `ℓ′`.
//! * **Expanded** over `(ℓ, ℓ′)`: draw `q ∈ (0, 1)`; compute neighbor
//!   counts `e`, `e′` over `N*(·)` — neighborhoods that *exclude heads* of
//!   expanded particles — and contract to `ℓ′` iff `e ≠ 5`, the pair
//!   satisfies Property 1 or 2 with respect to `N*`, `q < λ^(e′−e)`, and
//!   `flag` is still true; otherwise contract back to `ℓ`.
//!
//! Activations are driven by independent Poisson clocks of rate 1 (Section
//! 3.2): inter-activation delays are `Exp(1)`, which makes every particle
//! equally likely to act next regardless of history, so the asynchronous
//! execution emulates the uniform particle selection of Markov chain `M`.
//! The runner is a discrete-event simulator with a future-event list; the
//! sequentialization of atomic actions is exactly the standard asynchronous
//! model argument of Section 2.1.
//!
//! The *configuration* of the system at any instant is the set of particle
//! **tails** (heads are ignored; Section 2.2, footnote 2), exposed as
//! [`LocalRunner::tail_system`].

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_lattice::{Direction, PairRing, TileGrid, TriPoint};
use sops_system::{moves::MoveValidity, ParticleSystem};

use crate::chain::ChainError;
use crate::probes::LocalProbes;
use crate::snapshot::{self, SnapshotError};

/// What happened during one particle activation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// A contracted particle expanded into an adjacent empty location.
    Expanded {
        /// The acting particle.
        id: usize,
        /// Whether its `flag` was set (no other expanded particle nearby).
        flag: bool,
    },
    /// An expanded particle completed its move by contracting to its head.
    ContractedForward {
        /// The acting particle.
        id: usize,
    },
    /// An expanded particle aborted its move by contracting to its tail.
    ContractedBack {
        /// The acting particle.
        id: usize,
    },
    /// A contracted particle activated but could not expand (occupied
    /// target or an expanded neighbor).
    Idle {
        /// The acting particle.
        id: usize,
    },
    /// The activated particle has crashed; nothing happened and its clock
    /// is not rescheduled.
    Crashed {
        /// The acting particle.
        id: usize,
    },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time: f64,
    id: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// One occupied site as stored in the occupancy grid: the particle id in
/// the high bits, the head/tail flag in bit 0.
#[derive(Clone, Copy, Debug)]
struct Slot {
    id: usize,
    is_head: bool,
}

impl Slot {
    #[inline]
    fn encode(self) -> u32 {
        debug_assert!(self.id < (1 << 31), "particle id exceeds 31 bits");
        (self.id as u32) << 1 | u32::from(self.is_head)
    }

    #[inline]
    fn decode(value: u32) -> Slot {
        Slot {
            id: (value >> 1) as usize,
            is_head: value & 1 != 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Particle {
    tail: TriPoint,
    head: Option<TriPoint>,
    flag: bool,
}

/// Discrete-event simulator for the asynchronous local algorithm `A`.
///
/// # Example
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use sops_core::local::LocalRunner;
/// use sops_system::{shapes, ParticleSystem};
///
/// let start = ParticleSystem::connected(shapes::line(12)).unwrap();
/// let mut runner = LocalRunner::new(&start, 4.0, StdRng::seed_from_u64(5)).unwrap();
/// runner.run_rounds(200);
/// let tails = runner.tail_system();
/// assert!(tails.is_connected());
/// assert!(tails.perimeter() < 22); // compressed below the initial line's 22
/// ```
#[derive(Clone, Debug)]
pub struct LocalRunner<R: Rng = StdRng> {
    particles: Vec<Particle>,
    /// Site → encoded [`Slot`] occupancy (tails and heads), bit-packed into
    /// 8×8-site tiles so neighborhood probes stay word-level.
    occ: TileGrid,
    queue: BinaryHeap<Event>,
    time: f64,
    lambda_pow: [f64; 11],
    lambda: f64,
    rng: R,
    activations: u64,
    moves_completed: u64,
    rounds: u64,
    /// Telemetry side channel: never serialized, never read by the
    /// algorithm (see [`crate::probes`] for the determinism contract).
    probes: LocalProbes,
    activated_in_round: Vec<bool>,
    remaining_in_round: usize,
    crashed: Vec<bool>,
    live: usize,
}

impl LocalRunner<StdRng> {
    /// Builds a runner with a [`StdRng`] seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`LocalRunner::new`].
    pub fn from_seed(
        start: &ParticleSystem,
        lambda: f64,
        seed: u64,
    ) -> Result<LocalRunner<StdRng>, ChainError> {
        LocalRunner::new(start, lambda, StdRng::seed_from_u64(seed))
    }

    /// Serializes the full simulator state — particles (tails, heads,
    /// flags), the future-event list, round bookkeeping, crash set and exact
    /// RNG state — as a compact text snapshot.
    ///
    /// [`LocalRunner::restore`] rebuilds a runner whose continued execution
    /// is bitwise identical to running this one uninterrupted; see
    /// [`crate::snapshot`] for the format and guarantees.
    #[must_use]
    pub fn snapshot(&self) -> String {
        use core::fmt::Write as _;
        let particles: Vec<String> = self
            .particles
            .iter()
            .map(|p| match p.head {
                Some(h) => format!(
                    "{},{},{},{},{}",
                    p.tail.x,
                    p.tail.y,
                    h.x,
                    h.y,
                    u8::from(p.flag)
                ),
                None => format!("{},{},{}", p.tail.x, p.tail.y, u8::from(p.flag)),
            })
            .collect();
        let events: Vec<String> = self
            .queue
            .iter()
            .map(|e| format!("{}:{}", snapshot::f64_to_hex(e.time), e.id))
            .collect();
        let mut s = String::from("sops-local-snapshot v1\n");
        let _ = writeln!(s, "lambda={}", snapshot::f64_to_hex(self.lambda));
        let _ = writeln!(s, "time={}", snapshot::f64_to_hex(self.time));
        let _ = writeln!(s, "activations={}", self.activations);
        let _ = writeln!(s, "moves={}", self.moves_completed);
        let _ = writeln!(s, "rounds={}", self.rounds);
        let _ = writeln!(s, "remaining={}", self.remaining_in_round);
        let _ = writeln!(s, "crashed={}", snapshot::bools_to_string(&self.crashed));
        let _ = writeln!(
            s,
            "activated={}",
            snapshot::bools_to_string(&self.activated_in_round)
        );
        let _ = writeln!(s, "rng={}", snapshot::rng_to_string(&self.rng));
        let _ = writeln!(s, "particles={}", particles.join(";"));
        let _ = writeln!(s, "queue={}", events.join(";"));
        s
    }

    /// Rebuilds a runner from a [`LocalRunner::snapshot`] text.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the text is malformed or describes an invalid
    /// state (overlapping sites, a head not adjacent to its tail, an event
    /// for an unknown particle, bad λ).
    pub fn restore(text: &str) -> Result<LocalRunner<StdRng>, SnapshotError> {
        let fields = snapshot::Fields::parse(text, "sops-local-snapshot v1")?;
        let bad = |field: &'static str, value: &str| SnapshotError::BadField {
            field,
            value: value.to_string(),
        };
        let lambda = fields.parse_f64_bits("lambda")?;
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(SnapshotError::Invalid(format!("bad lambda {lambda}")));
        }
        let raw_particles = fields.get("particles")?;
        let mut particles = Vec::new();
        for item in raw_particles.split(';').filter(|i| !i.is_empty()) {
            let nums: Vec<i32> = item
                .split(',')
                .map(|t| t.parse().map_err(|_| bad("particles", raw_particles)))
                .collect::<Result<_, _>>()?;
            let particle = match nums[..] {
                [x, y, flag] => Particle {
                    tail: TriPoint::new(x, y),
                    head: None,
                    flag: flag != 0,
                },
                [x, y, hx, hy, flag] => Particle {
                    tail: TriPoint::new(x, y),
                    head: Some(TriPoint::new(hx, hy)),
                    flag: flag != 0,
                },
                _ => return Err(bad("particles", raw_particles)),
            };
            if let Some(h) = particle.head {
                if !particle.tail.is_adjacent(h) {
                    return Err(SnapshotError::Invalid(format!(
                        "head {h} not adjacent to tail {}",
                        particle.tail
                    )));
                }
            }
            particles.push(particle);
        }
        if particles.is_empty() {
            return Err(SnapshotError::Invalid("no particles".into()));
        }
        let n = particles.len();
        let mut occ = TileGrid::with_site_capacity(2 * n);
        for (id, p) in particles.iter().enumerate() {
            if occ
                .insert(p.tail, Slot { id, is_head: false }.encode())
                .is_some()
            {
                return Err(SnapshotError::Invalid(format!(
                    "site {} occupied twice",
                    p.tail
                )));
            }
            if let Some(h) = p.head {
                if occ.insert(h, Slot { id, is_head: true }.encode()).is_some() {
                    return Err(SnapshotError::Invalid(format!("site {h} occupied twice")));
                }
            }
        }
        let raw_queue = fields.get("queue")?;
        let mut queue = BinaryHeap::with_capacity(n);
        for item in raw_queue.split(';').filter(|i| !i.is_empty()) {
            let (time_hex, id) = item
                .split_once(':')
                .ok_or_else(|| bad("queue", raw_queue))?;
            let id: usize = id.parse().map_err(|_| bad("queue", raw_queue))?;
            if id >= n {
                return Err(SnapshotError::Invalid(format!(
                    "event for unknown particle {id}"
                )));
            }
            queue.push(Event {
                time: snapshot::f64_from_hex("queue", time_hex)?,
                id,
            });
        }
        let crashed = snapshot::bools_from_string("crashed", fields.get("crashed")?, n)?;
        let live = crashed.iter().filter(|&&dead| !dead).count();
        let mut lambda_pow = [0.0; 11];
        for (i, slot) in lambda_pow.iter_mut().enumerate() {
            *slot = lambda.powi(i as i32 - 5);
        }
        Ok(LocalRunner {
            particles,
            occ,
            queue,
            time: fields.parse_f64_bits("time")?,
            lambda_pow,
            lambda,
            rng: snapshot::rng_from_string("rng", fields.get("rng")?)?,
            activations: fields.parse_num("activations")?,
            moves_completed: fields.parse_num("moves")?,
            rounds: fields.parse_num("rounds")?,
            probes: LocalProbes::default(),
            activated_in_round: snapshot::bools_from_string(
                "activated",
                fields.get("activated")?,
                n,
            )?,
            remaining_in_round: fields.parse_num("remaining")?,
            crashed,
            live,
        })
    }
}

impl<R: Rng> LocalRunner<R> {
    /// Creates the runner with all particles contracted at the positions of
    /// `start`, which must be connected.
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] or [`ChainError::NotConnected`].
    pub fn new(
        start: &ParticleSystem,
        lambda: f64,
        mut rng: R,
    ) -> Result<LocalRunner<R>, ChainError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ChainError::InvalidLambda(lambda));
        }
        if !start.is_connected() {
            return Err(ChainError::NotConnected);
        }
        let particles: Vec<Particle> = start
            .positions()
            .iter()
            .map(|&tail| Particle {
                tail,
                head: None,
                flag: false,
            })
            .collect();
        let mut occ = TileGrid::with_site_capacity(2 * particles.len());
        for (id, p) in particles.iter().enumerate() {
            occ.insert(p.tail, Slot { id, is_head: false }.encode());
        }
        let mut lambda_pow = [0.0; 11];
        for (i, slot) in lambda_pow.iter_mut().enumerate() {
            *slot = lambda.powi(i as i32 - 5);
        }
        let n = particles.len();
        let mut queue = BinaryHeap::with_capacity(n);
        for id in 0..n {
            let delay = exp1(&mut rng);
            queue.push(Event { time: delay, id });
        }
        Ok(LocalRunner {
            particles,
            occ,
            queue,
            time: 0.0,
            lambda_pow,
            lambda,
            rng,
            activations: 0,
            moves_completed: 0,
            rounds: 0,
            probes: LocalProbes::default(),
            activated_in_round: vec![false; n],
            remaining_in_round: n,
            crashed: vec![false; n],
            live: n,
        })
    }

    /// The bias parameter `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Simulated (continuous) time elapsed.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Total particle activations processed.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Completed moves (forward contractions).
    #[must_use]
    pub fn moves_completed(&self) -> u64 {
        self.moves_completed
    }

    /// Completed asynchronous rounds: a round ends when every live particle
    /// has been activated at least once since the round began (Section 2.1).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Telemetry probes accumulated since construction (or since the last
    /// restore — probes are not part of snapshots).
    #[must_use]
    pub fn probes(&self) -> &LocalProbes {
        &self.probes
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// `true` if the runner has no particles (constructors forbid this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Whether particle `id` is currently expanded.
    #[must_use]
    pub fn is_expanded(&self, id: usize) -> bool {
        self.particles[id].head.is_some()
    }

    /// Crashes particle `id`: it never activates again (Section 3.3). If it
    /// is expanded at crash time it remains expanded forever, obstructing
    /// its neighborhood — the adversarial behavior the paper speculates
    /// about for Byzantine particles.
    pub fn crash(&mut self, id: usize) {
        if !self.crashed[id] {
            self.crashed[id] = true;
            self.live -= 1;
            // Round accounting ignores crashed particles from now on.
            if !self.activated_in_round[id] {
                self.remaining_in_round -= 1;
                self.maybe_finish_round();
            }
        }
    }

    /// The configuration as defined by the paper: tails of all particles
    /// (heads ignored; Section 2.2 footnote 2).
    #[must_use]
    pub fn tail_system(&self) -> ParticleSystem {
        ParticleSystem::new(self.particles.iter().map(|p| p.tail))
            .expect("tails are distinct by construction")
    }

    /// Processes the next activation event. Returns `None` when no events
    /// remain (all particles crashed).
    pub fn step(&mut self) -> Option<Activation> {
        let event = self.queue.pop()?;
        self.time = event.time;
        let id = event.id;
        if self.crashed[id] {
            return Some(Activation::Crashed { id });
        }
        self.activations += 1;
        let outcome = self.activate(id);
        match outcome {
            Activation::Expanded { .. } => self.probes.expanded += 1,
            Activation::ContractedForward { .. } => self.probes.contracted_forward += 1,
            Activation::ContractedBack { .. } => self.probes.contracted_back += 1,
            Activation::Idle { .. } => self.probes.idle += 1,
            Activation::Crashed { .. } => {}
        }
        // Reschedule with a fresh Exp(1) delay.
        let next = Event {
            time: self.time + exp1(&mut self.rng),
            id,
        };
        self.queue.push(next);
        // Round bookkeeping.
        if !self.activated_in_round[id] {
            self.activated_in_round[id] = true;
            self.remaining_in_round -= 1;
            self.maybe_finish_round();
        }
        Some(outcome)
    }

    fn maybe_finish_round(&mut self) {
        if self.remaining_in_round == 0 {
            self.rounds += 1;
            for (id, slot) in self.activated_in_round.iter_mut().enumerate() {
                *slot = self.crashed[id];
            }
            self.remaining_in_round = self.live;
            // A system with zero live particles completes no further rounds.
            if self.live == 0 {
                self.remaining_in_round = usize::MAX;
            }
        }
    }

    /// Runs `k` activations (or until no events remain).
    pub fn run_activations(&mut self, k: u64) {
        for _ in 0..k {
            if self.step().is_none() {
                break;
            }
        }
    }

    /// Runs until `r` more asynchronous rounds complete.
    pub fn run_rounds(&mut self, r: u64) {
        let target = self.rounds + r;
        while self.rounds < target {
            if self.step().is_none() {
                break;
            }
        }
    }

    /// Algorithm `A` for one activation of particle `id`.
    fn activate(&mut self, id: usize) -> Activation {
        let particle = self.particles[id];
        match particle.head {
            None => self.activate_contracted(id, particle.tail),
            Some(head) => self.activate_expanded(id, particle.tail, head),
        }
    }

    /// Steps 1–7 of Algorithm `A` (contracted phase).
    fn activate_contracted(&mut self, id: usize, tail: TriPoint) -> Activation {
        // Step 2: choose ℓ′ uniformly among the six neighbors.
        let dir = Direction::from_index(self.rng.gen_range(0..6usize));
        let target = tail + dir;
        // Step 3: require ℓ′ unoccupied and no expanded neighbors of ℓ.
        if self.occ.contains(target) || self.has_expanded_neighbor(tail, id) {
            return Activation::Idle { id };
        }
        // Step 4: expand.
        self.occ.insert(target, Slot { id, is_head: true }.encode());
        self.particles[id].head = Some(target);
        // Steps 5–7: set the flag.
        let flag = !self.has_expanded_neighbor(tail, id) && !self.has_expanded_neighbor(target, id);
        self.particles[id].flag = flag;
        Activation::Expanded { id, flag }
    }

    /// Steps 8–13 of Algorithm `A` (expanded phase).
    fn activate_expanded(&mut self, id: usize, tail: TriPoint, head: TriPoint) -> Activation {
        // Step 8: draw q.
        let q: f64 = self.rng.gen();
        // Steps 9–10: neighbor counts over N*(·), excluding heads (including
        // the particle's own head) and the particle's own tail.
        let dir = tail
            .direction_to(head)
            .expect("head is adjacent to tail by construction");
        let ring = PairRing::new(tail, dir);
        let mask = ring.occupancy_mask(|p| self.is_tail_of_other(p, id));
        let validity = MoveValidity::from_mask(mask, false);
        // Step 11: the four conditions.
        let delta = validity.edge_delta();
        let threshold = self.lambda_pow[(delta + 5) as usize];
        let accept = !validity.five_neighbor_blocked()
            && (validity.property1 || validity.property2)
            && q < threshold
            && self.particles[id].flag;
        if accept {
            // Step 12: contract to ℓ′.
            self.occ.remove(tail);
            self.occ.insert(head, Slot { id, is_head: false }.encode());
            self.particles[id].tail = head;
            self.particles[id].head = None;
            self.moves_completed += 1;
            Activation::ContractedForward { id }
        } else {
            // Step 13: contract back to ℓ.
            self.occ.remove(head);
            self.particles[id].head = None;
            Activation::ContractedBack { id }
        }
    }

    /// Does `p` have a neighbor site occupied by an expanded particle other
    /// than `id` (at either that particle's head or tail)?
    fn has_expanded_neighbor(&self, p: TriPoint, id: usize) -> bool {
        p.neighbors().any(|q| {
            self.occ.get(q).is_some_and(|value| {
                let slot = Slot::decode(value);
                slot.id != id && self.particles[slot.id].head.is_some()
            })
        })
    }

    /// Is `p` occupied by a non-head slot of a particle other than `id`?
    /// This realizes the paper's `N*(·)` neighborhoods.
    fn is_tail_of_other(&self, p: TriPoint, id: usize) -> bool {
        self.occ.get(p).is_some_and(|value| {
            let slot = Slot::decode(value);
            slot.id != id && !slot.is_head
        })
    }

    /// Checks internal invariants (slot/particle agreement, tail
    /// distinctness, grid consistency). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails.
    pub fn assert_invariants(&self) {
        self.occ.assert_valid();
        let mut slots = 0usize;
        for (id, particle) in self.particles.iter().enumerate() {
            assert_eq!(
                self.occ.get(particle.tail),
                Some(Slot { id, is_head: false }.encode()),
                "tail slot mismatch at {}",
                particle.tail
            );
            slots += 1;
            if let Some(h) = particle.head {
                assert_eq!(
                    self.occ.get(h),
                    Some(Slot { id, is_head: true }.encode()),
                    "head slot mismatch at {h}"
                );
                slots += 1;
            }
        }
        assert_eq!(slots, self.occ.len(), "slot count mismatch");
    }
}

/// Samples an `Exp(1)` delay by inversion.
fn exp1(rng: &mut impl Rng) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_system::{metrics, shapes};

    fn runner(n: usize, lambda: f64, seed: u64) -> LocalRunner {
        let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
        LocalRunner::from_seed(&sys, lambda, seed).unwrap()
    }

    #[test]
    fn exp1_is_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = exp1(&mut rng);
            assert!(x.is_finite() && x >= 0.0);
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "Exp(1) mean ≈ 1, got {mean}");
    }

    #[test]
    fn construction_validates_inputs() {
        let sys = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert!(matches!(
            LocalRunner::from_seed(&sys, -1.0, 0),
            Err(ChainError::InvalidLambda(_))
        ));
        let disconnected = ParticleSystem::new([
            sops_lattice::TriPoint::new(0, 0),
            sops_lattice::TriPoint::new(8, 8),
        ])
        .unwrap();
        assert!(matches!(
            LocalRunner::from_seed(&disconnected, 2.0, 0),
            Err(ChainError::NotConnected)
        ));
    }

    #[test]
    fn invariants_hold_along_execution() {
        let mut r = runner(10, 4.0, 3);
        for _ in 0..5_000 {
            r.step();
            if r.activations().is_multiple_of(500) {
                r.assert_invariants();
                assert!(r.tail_system().is_connected(), "tails disconnected");
            }
        }
    }

    #[test]
    fn rounds_advance_and_time_is_monotone() {
        let mut r = runner(8, 2.0, 5);
        let mut last_time = 0.0;
        for _ in 0..2_000 {
            r.step();
            assert!(r.time() >= last_time);
            last_time = r.time();
        }
        assert!(r.rounds() > 0, "rounds must complete");
        // With Poisson(1) clocks, a round takes Θ(log n) expected time; over
        // 2000 activations of 8 particles we expect roughly 250 rounds.
        let per_round = 2000.0 / r.rounds() as f64;
        assert!(per_round >= 8.0, "a round needs ≥ n activations");
    }

    #[test]
    fn compression_happens_via_local_algorithm() {
        let mut r = runner(15, 5.0, 7);
        r.run_rounds(3_000);
        let tails = r.tail_system();
        assert!(tails.is_connected());
        let p = tails.perimeter();
        assert!(
            p < metrics::pmax(15) * 2 / 3,
            "local algorithm should compress: p = {p}"
        );
        assert!(r.moves_completed() > 0);
    }

    #[test]
    fn crashed_particles_freeze() {
        let mut r = runner(6, 3.0, 11);
        let frozen = r.tail_system().position(0);
        r.crash(0);
        r.run_activations(5_000);
        assert_eq!(r.tail_system().position(0), frozen);
        // The rest of the system still progresses.
        assert!(r.activations() > 0);
        assert!(r.rounds() > 0, "rounds still complete among live particles");
    }

    #[test]
    fn all_crashed_stops_event_stream() {
        let mut r = runner(3, 2.0, 13);
        for id in 0..3 {
            r.crash(id);
        }
        // Draining the queue yields only Crashed events, then None.
        let mut crashed_events = 0;
        while let Some(a) = r.step() {
            assert!(matches!(a, Activation::Crashed { .. }));
            crashed_events += 1;
            assert!(crashed_events <= 3);
        }
        assert_eq!(r.activations(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = runner(9, 4.0, 21);
        let mut b = runner(9, 4.0, 21);
        a.run_activations(3_000);
        b.run_activations(3_000);
        assert_eq!(
            a.tail_system().canonical_key(),
            b.tail_system().canonical_key()
        );
        assert_eq!(a.moves_completed(), b.moves_completed());
        assert!((a.time() - b.time()).abs() < 1e-12);
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let mut a = runner(9, 4.0, 31);
        a.run_activations(2_137); // stop mid-round, some particles expanded
        let snap = a.snapshot();
        let mut b = LocalRunner::restore(&snap).unwrap();
        b.assert_invariants();
        assert_eq!(a.activations(), b.activations());
        assert_eq!(a.rounds(), b.rounds());
        a.run_activations(4_000);
        b.run_activations(4_000);
        assert_eq!(a.moves_completed(), b.moves_completed());
        assert!(
            (a.time() - b.time()).abs() == 0.0,
            "time must match exactly"
        );
        assert_eq!(
            a.tail_system().canonical_key(),
            b.tail_system().canonical_key()
        );
    }

    #[test]
    fn snapshot_preserves_crashes_and_expanded_heads() {
        let mut a = runner(8, 3.0, 5);
        a.crash(3);
        a.run_activations(1_001);
        let b = LocalRunner::restore(&a.snapshot()).unwrap();
        for id in 0..a.len() {
            assert_eq!(a.is_expanded(id), b.is_expanded(id), "particle {id}");
        }
        let mut b = b;
        b.run_activations(2_000);
        assert_eq!(b.tail_system().position(3), a.tail_system().position(3));
    }

    #[test]
    fn restore_rejects_inconsistent_state() {
        let a = runner(4, 2.0, 1);
        let snap = a.snapshot();
        let corrupt = snap.replace("sops-local-snapshot v1", "sops-chain-snapshot v1");
        assert!(LocalRunner::restore(&corrupt).is_err());
        // An event pointing at a particle that does not exist.
        let bad_queue = snap
            .lines()
            .map(|l| {
                if l.starts_with("queue=") {
                    format!("{l};{}:99", crate::snapshot::f64_to_hex(1.0))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            LocalRunner::restore(&bad_queue).unwrap_err(),
            SnapshotError::Invalid(_)
        ));
    }

    #[test]
    fn expanded_particles_block_neighbor_expansion() {
        // Run a while and verify that no two adjacent particles are ever
        // simultaneously expanded *with both flags set* — the serialization
        // property the flag protocol guarantees (Section 3.2).
        let mut r = runner(10, 3.0, 17);
        for _ in 0..20_000 {
            r.step();
            let expanded: Vec<usize> = (0..r.len()).filter(|&i| r.is_expanded(i)).collect();
            for &i in &expanded {
                for &j in &expanded {
                    if i >= j || !r.particles[i].flag || !r.particles[j].flag {
                        continue;
                    }
                    // Flagged expanded particles must not be adjacent.
                    let pi = [r.particles[i].tail, r.particles[i].head.unwrap()];
                    let pj = [r.particles[j].tail, r.particles[j].head.unwrap()];
                    for a in pi {
                        for b in pj {
                            assert!(
                                !a.is_adjacent(b),
                                "flagged expanded particles {i} and {j} adjacent"
                            );
                        }
                    }
                }
            }
        }
    }
}
