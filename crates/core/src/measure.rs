//! Shared trajectory measurement for the two samplers of `M`.
//!
//! Both [`crate::chain::CompressionChain`] and [`crate::kmc::KmcChain`]
//! observe the same quantities the same way: a monotone hole-free latch
//! (holes never reappear once eliminated — Lemma 3.2) lazily confirmed by
//! an allocation-free boundary trace, a perimeter through the closed form
//! `p = 3n − e − 3 + 3H`, and [`TrajectoryPoint`] samples. One
//! implementation here keeps the two from drifting (this PR's
//! one-trace-per-check fix would otherwise have to be applied twice).

use sops_system::{boundary, metrics, ParticleSystem};

use crate::chain::TrajectoryPoint;

/// The hole-free latch plus the reusable trace scratch behind it.
///
/// Transient working buffers — not part of snapshots; only the latch bit is
/// serialized (restoring the stored value rather than recomputing preserves
/// the exact observable behavior of the lazily monotone flag).
#[derive(Clone, Debug)]
pub(crate) struct HoleTracker {
    hole_free: bool,
    scratch: boundary::TraceScratch,
}

impl HoleTracker {
    pub(crate) fn new(hole_free: bool) -> HoleTracker {
        HoleTracker {
            hole_free,
            scratch: boundary::TraceScratch::default(),
        }
    }

    /// The latch bit as last observed (no trace).
    pub(crate) fn latched(&self) -> bool {
        self.hole_free
    }

    /// Forces the latch (snapshot restore).
    pub(crate) fn set_latched(&mut self, hole_free: bool) {
        self.hole_free = hole_free;
    }

    /// The current hole count: zero for free once latched, otherwise one
    /// scratch-backed boundary trace that also updates the latch.
    pub(crate) fn holes(&mut self, sys: &ParticleSystem) -> usize {
        if self.hole_free {
            return 0;
        }
        let holes = boundary::trace_summary_with(sys, &mut self.scratch).hole_count;
        if holes == 0 {
            self.hole_free = true;
        }
        holes
    }

    /// `true` once the configuration is hole-free; monotone by Lemma 3.2.
    pub(crate) fn is_hole_free(&mut self, sys: &ParticleSystem) -> bool {
        self.holes(sys) == 0
    }

    /// The current perimeter `p(σ)`: O(1) once hole-free, otherwise one
    /// boundary trace serving both the latch and the hole count of the
    /// closed form.
    pub(crate) fn perimeter(&mut self, sys: &ParticleSystem) -> u64 {
        let holes = self.holes(sys);
        sys.perimeter_with_holes(holes as u64)
    }

    /// Samples a [`TrajectoryPoint`] at `step`; one trace serves both the
    /// latch and the sample (none once latched).
    pub(crate) fn sample(&mut self, sys: &ParticleSystem, step: u64) -> TrajectoryPoint {
        let holes = self.holes(sys);
        let perimeter = sys.perimeter_with_holes(holes as u64);
        let n = sys.len();
        TrajectoryPoint {
            step,
            edges: sys.edge_count(),
            perimeter,
            holes,
            alpha: if metrics::pmin(n) == 0 {
                f64::INFINITY
            } else {
                perimeter as f64 / metrics::pmin(n) as f64
            },
            beta: if metrics::pmax(n) == 0 {
                f64::NAN
            } else {
                perimeter as f64 / metrics::pmax(n) as f64
            },
        }
    }
}
