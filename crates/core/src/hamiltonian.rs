//! Pluggable local Hamiltonians: the energy functions chain `M` samples.
//!
//! The paper's chain is one instance of a general pattern: local Metropolis
//! dynamics over connected, hole-free particle configurations, accepting a
//! structurally valid move with probability `min(1, λ^Δ)` where
//! `Δ = H(σ′) − H(σ)` is the change in a **local energy** `H`. The
//! compression results take `H = e(σ)` (the configuration edge count);
//! follow-up work reuses exactly this skeleton with different Hamiltonians —
//! alignment (Kedia, Oh & Randall) biases toward neighboring particles that
//! share an orientation, foraging (Oh & Randall) switches the bias with the
//! environment. The [`Hamiltonian`] trait is that seam: both samplers
//! ([`crate::chain::CompressionChain`] and [`crate::kmc::KmcChain`]) are
//! generic over it, with [`EdgeCount`] as the default instance that is
//! byte-identical to the original hard-coded chain (same RNG draws, same
//! snapshots).
//!
//! # The locality contract
//!
//! Implementations must satisfy two contracts that the samplers rely on:
//!
//! 1. **Bounded deltas.** Every structurally valid move's `Δ` lies in
//!    `[delta_min(), delta_max()]`, a range fixed at construction with span
//!    at most 254. The samplers precompute one bias weight per possible `Δ`
//!    (`λ^Δ` for the naive chain, `min(1, λ^Δ)` for the rejection-free
//!    sampler) and index it by `Δ − delta_min()`; the rejection-free
//!    sampler's bitset tower keeps one integral bucket per class, which is
//!    what makes its total acceptance mass drift-free.
//! 2. **Bounded support.** `Δ` for a move `(ℓ → ℓ′ = ℓ + d)` must be a
//!    function of the occupancy — and per-particle state such as
//!    orientation — of the sites within the [`sops_lattice::PairRing`] of
//!    `(ℓ, ℓ′)` plus the two sites themselves (all within lattice distance
//!    2 of `ℓ`). The rejection-free sampler revalidates exactly the pairs
//!    whose ring touches the two sites an accepted move changes
//!    ([`sops_system::moves::revalidation_plan`]); a Hamiltonian that reads
//!    farther afield would silently desynchronize its acceptance table.
//!
//! Within those contracts a Hamiltonian is free to read any per-particle
//! state the configuration carries (the move conditions — five-neighbor
//! rule, Properties 1/2 — stay fixed, so Lemmas 3.1 and 3.2 keep holding:
//! connectivity is preserved and holes never reappear, for *every*
//! Hamiltonian).
//!
//! # Example: selecting a Hamiltonian by name
//!
//! ```
//! use sops_core::hamiltonian::{Alignment, EdgeCount, HamiltonianSpec};
//!
//! let spec: HamiltonianSpec = "alignment:4".parse().unwrap();
//! assert_eq!(spec, HamiltonianSpec::Alignment { q: 4 });
//! assert_eq!(spec.to_string(), "alignment:4");
//! assert_eq!("edges".parse::<HamiltonianSpec>().unwrap().to_string(), "edges");
//! ```

use core::fmt;
use core::str::FromStr;

use sops_lattice::{Direction, TriPoint};
use sops_system::{MoveValidity, ParticleId, ParticleSystem};

/// Everything a [`Hamiltonian`] may read when computing the energy change of
/// one prospective move: the configuration, the moving particle, and the
/// precomputed structural validity (which carries the pair-ring occupancy
/// mask and both neighbor counts).
#[derive(Clone, Copy, Debug)]
pub struct MoveContext<'a> {
    /// The configuration the move would act on (in its *pre-move* state).
    pub sys: &'a ParticleSystem,
    /// The moving particle.
    pub id: ParticleId,
    /// Its current location `ℓ`.
    pub from: TriPoint,
    /// The move direction (`ℓ′ = from + dir`).
    pub dir: Direction,
    /// Structural validity of the move; includes the ring occupancy mask
    /// and the neighbor counts `e` and `e′`.
    pub validity: MoveValidity,
}

impl MoveContext<'_> {
    /// The destination location `ℓ′`.
    #[must_use]
    pub fn to(&self) -> TriPoint {
        self.from + self.dir
    }
}

/// A local energy function `H(σ)` driving the Metropolis bias `min(1, λ^Δ)`.
///
/// See the [module docs](self) for the locality contract implementations
/// must satisfy. Both samplers are generic over this trait; construct them
/// with [`crate::chain::CompressionChain::with_hamiltonian`] /
/// [`crate::kmc::KmcChain::with_hamiltonian`] (the plain constructors use
/// [`EdgeCount`]).
pub trait Hamiltonian: Clone + fmt::Debug + Send + Sync + 'static {
    /// A stable identifier, parseable by [`Hamiltonian::parse`]. Written
    /// into snapshots (omitted for the default `"edges"`, keeping those
    /// byte-identical to the pre-trait format) and shown in CLI output.
    fn name(&self) -> String;

    /// The most negative `Δ` any structurally valid move can produce.
    fn delta_min(&self) -> i32;

    /// The most positive `Δ` any structurally valid move can produce.
    fn delta_max(&self) -> i32;

    /// The energy change `Δ = H(σ′) − H(σ)` of the structurally valid move
    /// described by `ctx`. Must lie within
    /// `[delta_min(), delta_max()]` and read only the bounded window of the
    /// locality contract.
    fn delta(&self, ctx: &MoveContext<'_>) -> i32;

    /// Checks that a starting configuration carries the state this
    /// Hamiltonian needs (e.g. [`Alignment`] requires per-particle
    /// orientations below its `q`).
    ///
    /// # Errors
    ///
    /// A human-readable description of what is missing or inconsistent.
    fn validate(&self, sys: &ParticleSystem) -> Result<(), String> {
        let _ = sys;
        Ok(())
    }

    /// Rebuilds an instance from a [`Hamiltonian::name`] string (snapshot
    /// restore); `None` when the name does not describe this type.
    fn parse(name: &str) -> Option<Self>;
}

/// The paper's Hamiltonian: `H(σ) = e(σ)`, the configuration edge count.
///
/// `Δ = e′ − e ∈ [−5, 5]` comes straight from the neighbor counts the
/// structural check already computed, so this instance adds no work to
/// either sampler — and the samplers it parameterizes are byte-identical to
/// the pre-trait hard-coded implementation (same RNG consumption, same
/// snapshot bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeCount;

impl Hamiltonian for EdgeCount {
    fn name(&self) -> String {
        "edges".into()
    }

    fn delta_min(&self) -> i32 {
        -5
    }

    fn delta_max(&self) -> i32 {
        5
    }

    fn delta(&self, ctx: &MoveContext<'_>) -> i32 {
        ctx.validity.edge_delta()
    }

    fn parse(name: &str) -> Option<EdgeCount> {
        (name == "edges").then_some(EdgeCount)
    }
}

/// An alignment Hamiltonian: `H(σ) = a(σ)`, the number of configuration
/// edges whose endpoints share an orientation.
///
/// Each particle carries a fixed orientation in `0..q`
/// ([`ParticleSystem::orientations`]); biasing toward aligned neighbor
/// pairs makes like-oriented particles cluster into compressed
/// single-orientation domains as `λ` grows — the movement half of the local
/// alignment dynamics of Kedia, Oh & Randall (*Local Stochastic Algorithms
/// for Alignment in Self-Organizing Particle Systems*), with orientations
/// quenched so the chain stays reversible with respect to
/// `π(σ) ∝ λ^{a(σ)}` over the same hole-free connected state space.
///
/// `Δ` counts the mover's like-oriented neighbors gained at `ℓ′` minus
/// those lost at `ℓ` — ten occupancy lookups, all within the pair ring, so
/// the locality contract holds and the rejection-free sampler's
/// revalidation plan stays exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// Number of distinct orientations (`2..=64`).
    pub q: u8,
}

/// Default orientation count for [`Alignment`] when none is given
/// (`"alignment"` parses as `alignment:3`).
pub const DEFAULT_ALIGNMENT_Q: u8 = 3;

impl Alignment {
    /// An alignment Hamiltonian over `q` orientations.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ q ≤ 64` (one orientation makes every edge aligned
    /// and the dynamics degenerate to [`EdgeCount`]).
    #[must_use]
    pub fn new(q: u8) -> Alignment {
        assert!((2..=64).contains(&q), "alignment q must be in 2..=64");
        Alignment { q }
    }
}

impl Hamiltonian for Alignment {
    fn name(&self) -> String {
        format!("alignment:{}", self.q)
    }

    fn delta_min(&self) -> i32 {
        -5
    }

    fn delta_max(&self) -> i32 {
        5
    }

    fn delta(&self, ctx: &MoveContext<'_>) -> i32 {
        let mine = ctx
            .sys
            .orientation(ctx.id)
            .expect("validate() guarantees orientations");
        let to = ctx.to();
        let mut delta = 0i32;
        for d in Direction::ALL {
            // Lost aligned pairs at ℓ: the target ℓ′ is unoccupied, so every
            // occupied neighbor here is a real pre-move neighbor.
            if ctx
                .sys
                .particle_at(ctx.from + d)
                .is_some_and(|nb| ctx.sys.orientation(nb) == Some(mine))
            {
                delta -= 1;
            }
            // Gained aligned pairs at ℓ′, excluding the mover itself (still
            // sitting at ℓ, which is adjacent to ℓ′).
            if ctx
                .sys
                .particle_at(to + d)
                .is_some_and(|nb| nb != ctx.id && ctx.sys.orientation(nb) == Some(mine))
            {
                delta += 1;
            }
        }
        delta
    }

    fn validate(&self, sys: &ParticleSystem) -> Result<(), String> {
        let Some(orientations) = sys.orientations() else {
            return Err(format!(
                "the {} Hamiltonian needs per-particle orientations \
                 (ParticleSystem::with_orientations)",
                self.name()
            ));
        };
        if let Some(&bad) = orientations.iter().find(|&&o| o >= self.q) {
            return Err(format!(
                "orientation {bad} is out of range for {} orientations",
                self.q
            ));
        }
        Ok(())
    }

    fn parse(name: &str) -> Option<Alignment> {
        let spec: HamiltonianSpec = name.parse().ok()?;
        match spec {
            HamiltonianSpec::Alignment { q } => Some(Alignment { q }),
            HamiltonianSpec::Edges => None,
        }
    }
}

/// A value-level description of a Hamiltonian choice — the form that travels
/// through job specs, CLI flags and checkpoint metadata, where the concrete
/// [`Hamiltonian`] type is not known at compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HamiltonianSpec {
    /// The paper's edge-count Hamiltonian ([`EdgeCount`]); the default.
    #[default]
    Edges,
    /// The alignment Hamiltonian ([`Alignment`]) over `q` orientations.
    Alignment {
        /// Number of distinct orientations (`2..=64`).
        q: u8,
    },
}

impl HamiltonianSpec {
    /// Whether this is the default [`HamiltonianSpec::Edges`] choice (whose
    /// on-disk encodings stay byte-identical to the pre-trait formats).
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == HamiltonianSpec::Edges
    }
}

impl fmt::Display for HamiltonianSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HamiltonianSpec::Edges => write!(f, "edges"),
            HamiltonianSpec::Alignment { q } => write!(f, "alignment:{q}"),
        }
    }
}

impl FromStr for HamiltonianSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<HamiltonianSpec, String> {
        match s {
            "edges" | "edge-count" => return Ok(HamiltonianSpec::Edges),
            "alignment" => {
                return Ok(HamiltonianSpec::Alignment {
                    q: DEFAULT_ALIGNMENT_Q,
                })
            }
            _ => {}
        }
        if let Some(q) = s.strip_prefix("alignment:") {
            let q: u8 = q
                .parse()
                .map_err(|_| format!("bad orientation count in {s:?}"))?;
            if !(2..=64).contains(&q) {
                return Err(format!("alignment q must be in 2..=64, got {q}"));
            }
            return Ok(HamiltonianSpec::Alignment { q });
        }
        Err(format!(
            "unknown hamiltonian {s:?} (try edges|alignment|alignment:<q>)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_system::shapes;

    fn ctx_for<'a>(sys: &'a ParticleSystem, id: ParticleId, dir: Direction) -> MoveContext<'a> {
        let from = sys.position(id);
        MoveContext {
            sys,
            id,
            from,
            dir,
            validity: sys.check_move(from, dir),
        }
    }

    #[test]
    fn edge_count_matches_validity_delta() {
        let sys = ParticleSystem::connected(shapes::spiral(9)).unwrap();
        for id in 0..sys.len() {
            for dir in Direction::ALL {
                let ctx = ctx_for(&sys, id, dir);
                assert_eq!(EdgeCount.delta(&ctx), ctx.validity.edge_delta());
            }
        }
    }

    #[test]
    fn alignment_delta_matches_global_recount() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ham = Alignment::new(3);
        let pts = shapes::random_connected(14, &mut rng);
        let orientations: Vec<u8> = (0..14).map(|_| rng.gen_range(0..3)).collect();
        let sys = ParticleSystem::connected(pts)
            .unwrap()
            .with_orientations(orientations)
            .unwrap();
        ham.validate(&sys).unwrap();
        let before = sops_system::metrics::aligned_pairs(&sys);
        for id in 0..sys.len() {
            for dir in Direction::ALL {
                let ctx = ctx_for(&sys, id, dir);
                if !ctx.validity.is_structurally_valid() {
                    continue;
                }
                let local = ham.delta(&ctx);
                // Oracle: apply the move, recount globally, undo.
                let mut moved = sys.clone();
                moved.move_particle(id, dir).unwrap();
                let after = sops_system::metrics::aligned_pairs(&moved);
                assert_eq!(
                    local,
                    after as i32 - before as i32,
                    "particle {id} dir {dir:?}"
                );
                assert!((ham.delta_min()..=ham.delta_max()).contains(&local));
            }
        }
    }

    #[test]
    fn alignment_validate_rejects_missing_or_bad_orientations() {
        let plain = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert!(Alignment::new(3).validate(&plain).is_err());
        let oriented = plain.clone().with_orientations(vec![0, 1, 2, 2]).unwrap();
        assert!(Alignment::new(3).validate(&oriented).is_ok());
        // q = 2 makes orientation 2 out of range.
        assert!(Alignment::new(2).validate(&oriented).is_err());
    }

    #[test]
    fn spec_round_trips_and_rejects_garbage() {
        for raw in ["edges", "alignment:3", "alignment:64"] {
            let spec: HamiltonianSpec = raw.parse().unwrap();
            assert_eq!(spec.to_string(), raw);
            let again: HamiltonianSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
        assert_eq!(
            "alignment".parse::<HamiltonianSpec>().unwrap(),
            HamiltonianSpec::Alignment {
                q: DEFAULT_ALIGNMENT_Q
            }
        );
        assert!("alignment:1".parse::<HamiltonianSpec>().is_err());
        assert!("alignment:65".parse::<HamiltonianSpec>().is_err());
        assert!("ising".parse::<HamiltonianSpec>().is_err());
        assert!(HamiltonianSpec::Edges.is_default());
        assert!(!HamiltonianSpec::Alignment { q: 3 }.is_default());
    }

    #[test]
    fn parse_dispatches_by_type() {
        assert_eq!(EdgeCount::parse("edges"), Some(EdgeCount));
        assert_eq!(EdgeCount::parse("alignment:3"), None);
        assert_eq!(Alignment::parse("alignment:5"), Some(Alignment { q: 5 }));
        assert_eq!(Alignment::parse("edges"), None);
        assert_eq!(
            Alignment::parse("alignment"),
            Some(Alignment {
                q: DEFAULT_ALIGNMENT_Q
            })
        );
    }

    #[test]
    #[should_panic(expected = "alignment q must be in 2..=64")]
    fn alignment_new_rejects_degenerate_q() {
        let _ = Alignment::new(1);
    }
}
