//! Rejection-free (kinetic Monte Carlo) sampling of Markov chain `M`.
//!
//! In the regime the paper's main theorem lives in — `λ > 2 + √2` at or near
//! the α-compressed equilibrium (Theorem 4.5) — almost every step of the
//! naive chain is a rejection: the target is occupied, the five-neighbor
//! rule blocks, Properties 1/2 fail, or the Metropolis draw refuses. The
//! work per *accepted* move is then dominated by the no-ops between moves.
//! [`KmcChain`] eliminates them exactly.
//!
//! # Exact equivalence at step granularity
//!
//! One step of `M` in configuration `σ` selects a particle `P` and direction
//! `d` uniformly (probability `1/(6n)` per pair) and accepts with
//! probability `a(P, d) ∈ {0} ∪ {min(1, λ^(e′−e))}` — zero when the target
//! is occupied, the particle is crashed, `e = 5`, or neither Property holds.
//! Writing `S = Σ a(P, d)` for the total acceptance mass, each step
//! therefore independently:
//!
//! * accepts the specific move `m` with probability `a(m)/(6n)`, and
//! * rejects (a no-op) with probability `1 − S/(6n)`.
//!
//! Consequently, the number `K` of rejected steps before the next accepted
//! move is geometric, `P(K = k) = (1 − S/6n)^k · S/6n`, and the accepted
//! move is `m` with probability `a(m)/S`, independent of `K`:
//!
//! ```text
//! P(K = k, move = m) = (1 − S/6n)^k · a(m)/6n
//!                    = [Geom(S/6n)](k) · a(m)/S.
//! ```
//!
//! [`KmcChain`] samples exactly this product law: it draws `K` by inverting
//! the geometric CDF, advances its step counter by `K + 1`, and picks the
//! move proportionally to `a`. The distribution of the configuration at
//! *any* step index — and hence of [`TrajectoryPoint`] sequences,
//! [`KmcChain::run_until_compressed`] first hits, and stationary histograms
//! — is identical to the naive chain's. (The realized trajectories differ:
//! the two samplers consume randomness differently, so they are equal in
//! law, not bit-for-bit.) Because the geometric law is memoryless, a dwell
//! that is interrupted — by the end of a [`KmcChain::run`] budget or by a
//! [`KmcChain::crash`] that changes `S` — can be kept or redrawn against the
//! new `S` without biasing the process.
//!
//! # Incremental acceptance masses
//!
//! `a(P, d)` is a function of the 8-bit [`sops_lattice::PairRing`] occupancy
//! mask around `(ℓ, ℓ′ = ℓ + d)` plus the target bit, all within graph
//! distance 2 of `ℓ`. An accepted move changes occupancy at exactly two
//! sites, so only the pairs of [`sops_system::moves::revalidation_plan`]
//! need revalidation — ≤ 24 sites, each restricted to the directions whose
//! dependency set actually touches a changed site. An O(1) neighborhood per
//! accepted move.
//!
//! Masses take at most one distinct value `min(1, λ^Δ)` per energy delta
//! `Δ` in the [`Hamiltonian`]'s declared range (`Δ = e′ − e ∈ [−5, 5]`,
//! hence 11 classes, for the default edge count), so the table is a
//! **bucketed tower**, not a float tree: each structurally valid pair
//! `(P, d)` lives in the bucket of its `Δ`, `S` is the exactly-maintained
//! integer histogram folded against the per-class weights, and sampling is
//! one weighted draw over the classes followed by one uniform index draw.
//! Buckets stay sorted by pair index — a canonical form that makes the
//! table a pure function of the configuration (so snapshots can omit it and
//! still continue bit-for-bit) — and no floating-point accumulator ever
//! drifts: the histogram is integral, verified by a property test against a
//! from-scratch recount.
//!
//! The tower works for *any* [`Hamiltonian`] honoring the locality contract
//! of [`crate::hamiltonian`]: bounded integer deltas give the finitely many
//! integral buckets, and bounded support makes the post-move revalidation
//! plan (which only re-examines pairs whose ring touches the two changed
//! sites) exact.

use core::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_lattice::{Direction, TriPoint};
use sops_system::{metrics, moves, ParticleSystem};

use crate::chain::{ChainError, TrajectoryPoint};
use crate::hamiltonian::{EdgeCount, Hamiltonian, MoveContext};
use crate::measure::HoleTracker;
use crate::probes::KmcProbes;
use crate::snapshot::{self, SnapshotError};

/// Class index marking a pair with zero acceptance mass.
const CLASS_NONE: u8 = u8::MAX;

/// Aggregate outcome counters of a [`KmcChain`].
///
/// The rejection-free sampler never resolves *which* kind of rejection each
/// skipped step would have been (that information is integrated out by the
/// geometric dwell), so unlike [`crate::chain::StepCounts`] only the
/// accepted-move count and the dwell geometry are available.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmcCounts {
    /// Accepted (executed) moves.
    pub moved: u64,
    /// Largest single dwell: rejected steps skipped before one acceptance.
    /// Recorded when the dwell is *realized* (its accepted move executes),
    /// so a pending dwell cut short by a budget end or discarded by a crash
    /// never counts.
    pub max_jump: u64,
}

/// The acceptance-mass table: every structurally valid pair `(P, d)`
/// bucketed by its energy delta, supporting O(1) reclassification and
/// weighted sampling by class draw + rank/select.
///
/// Each class is a **bitset over pair indices** (one bit per `(P, d)`).
/// Because membership is positional, the whole table is a pure function of
/// (configuration, crash set) — no trace of mutation history survives. That
/// canonical form is what lets [`KmcChain::snapshot`] omit the table
/// entirely and still promise a bitwise-identical continuation after
/// [`KmcChain::restore`]: the rebuilt table samples the same pair for the
/// same RNG draws. Reclassifying a pair is two bit flips and two counter
/// bumps; selecting the `j`-th member of a class is a popcount scan of that
/// class's words (`6n/64` words — ~25 for the n = 1600 bench; a summary
/// level can be added if systems grow to where this scan shows up).
///
/// The class count is the span of the [`Hamiltonian`]'s delta range (11
/// for the default edge count; at most 255, since class indices live in a
/// `u8` beside the [`CLASS_NONE`] sentinel).
#[derive(Clone, Debug)]
struct MassTable {
    /// Per pair index `P·6 + d`: its class (`CLASS_NONE` = zero mass).
    class: Vec<u8>,
    /// Words per class bitset.
    stride: usize,
    /// Concatenated class bitsets: class `c` owns words
    /// `[c·stride, (c+1)·stride)`; bit `k` of a bitset = pair `k`.
    bits: Vec<u64>,
    /// Member count per class.
    count: Vec<u32>,
}

impl MassTable {
    fn new(pairs: usize, classes: usize) -> MassTable {
        let stride = pairs.div_ceil(64);
        MassTable {
            class: vec![CLASS_NONE; pairs],
            stride,
            bits: vec![0; stride * classes],
            count: vec![0; classes],
        }
    }

    /// Moves pair `k` to `class` (possibly `CLASS_NONE`). O(1).
    fn set(&mut self, k: usize, class: u8) {
        let old = self.class[k];
        if old == class {
            return;
        }
        let (word, bit) = (k / 64, 1u64 << (k % 64));
        if old != CLASS_NONE {
            self.bits[old as usize * self.stride + word] &= !bit;
            self.count[old as usize] -= 1;
        }
        if class != CLASS_NONE {
            self.bits[class as usize * self.stride + word] |= bit;
            self.count[class as usize] += 1;
        }
        self.class[k] = class;
    }

    /// Pairs per class — the integral state `S` is derived from.
    fn histogram(&self) -> Vec<u64> {
        self.count.iter().map(|&n| u64::from(n)).collect()
    }

    /// Total acceptance mass `S`, folded in fixed class order so identical
    /// histograms always produce the identical float.
    fn total(&self, weight: &[f64]) -> f64 {
        self.count
            .iter()
            .zip(weight)
            .map(|(&n, w)| f64::from(n) * w)
            .sum()
    }

    /// The `j`-th member (0-based, ascending pair index) of `class`.
    fn select(&self, class: usize, j: u32) -> u32 {
        let mut remaining = j;
        let base = class * self.stride;
        for (wi, &word) in self.bits[base..base + self.stride].iter().enumerate() {
            let ones = word.count_ones();
            if remaining < ones {
                // Clear the lowest `remaining` set bits, then read the next.
                let mut w = word;
                for _ in 0..remaining {
                    w &= w - 1;
                }
                return (wi * 64) as u32 + w.trailing_zeros();
            }
            remaining -= ones;
        }
        unreachable!("selection index exceeds class cardinality")
    }

    /// Draws a pair with probability proportional to its mass.
    ///
    /// `total` must be this table's positive total mass. Consumes one `f64`
    /// for the class and one bounded integer for the index.
    fn sample<R: Rng>(&self, weight: &[f64], total: f64, rng: &mut R) -> u32 {
        let mut target = rng.gen::<f64>() * total;
        let mut last_nonempty = usize::MAX;
        for (c, &n) in self.count.iter().enumerate() {
            if n == 0 {
                continue;
            }
            last_nonempty = c;
            let mass = f64::from(n) * weight[c];
            if target < mass {
                return self.select(c, rng.gen_range(0..n));
            }
            target -= mass;
        }
        // Float round-off can push the target past the final class; fall
        // back to a uniform member of the last non-empty class.
        let n = self.count[last_nonempty];
        self.select(last_nonempty, rng.gen_range(0..n))
    }

    /// Checks class/bitset agreement.
    fn assert_valid(&self) {
        for c in 0..self.count.len() {
            let base = c * self.stride;
            let mut members = 0u32;
            for (wi, &word) in self.bits[base..base + self.stride].iter().enumerate() {
                members += word.count_ones();
                let mut w = word;
                while w != 0 {
                    let k = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    assert_eq!(self.class[k], c as u8, "pair {k} misfiled");
                }
            }
            assert_eq!(members, self.count[c], "class {c} count drifted");
        }
        let counted: u32 = self.count.iter().sum();
        let classed = self.class.iter().filter(|&&c| c != CLASS_NONE).count();
        assert_eq!(counted as usize, classed, "membership drifted");
    }
}

/// The acceptance class of the move described by `ctx` under `hamiltonian`:
/// `Δ − delta_min`, or [`CLASS_NONE`] when the move is structurally
/// invalid. (Structural validity — and the energy delta only being
/// evaluated on valid moves — is Hamiltonian-independent.)
fn class_of_move<H: Hamiltonian>(hamiltonian: &H, delta_min: i32, ctx: &MoveContext<'_>) -> u8 {
    let v = ctx.validity;
    if v.target_occupied || v.five_neighbor_blocked() || !(v.property1 || v.property2) {
        CLASS_NONE
    } else {
        let delta = hamiltonian.delta(ctx);
        debug_assert!(
            delta >= delta_min && delta <= hamiltonian.delta_max(),
            "hamiltonian delta {delta} violates its declared range"
        );
        (delta - delta_min) as u8
    }
}

/// Recomputes the masses of particle `id` at `pos` for the directions in
/// `dmask` (bit `i` = `Direction::from_index(i)`).
///
/// One 5×5 window gather answers the structural validity of all requested
/// directions (every pair ring of `pos` lies inside it) plus the interior
/// fast path (six occupied neighbors ⇒ every move blocked); the Hamiltonian
/// then classifies each structurally valid move. A free function over split
/// borrows so the revalidation closure in [`KmcChain::accept_move`] can
/// mutate the table while reading the configuration. Directions outside
/// `dmask` are untouched — the caller guarantees their dependency sets did
/// not change (this is exactly where the locality contract of
/// [`crate::hamiltonian`] is load-bearing).
#[allow(clippy::too_many_arguments)]
fn refresh_masses<H: Hamiltonian>(
    hamiltonian: &H,
    delta_min: i32,
    sys: &ParticleSystem,
    crashed: &[bool],
    masses: &mut MassTable,
    id: usize,
    pos: TriPoint,
    dmask: u8,
) {
    let base = id * 6;
    if crashed[id] {
        // A crashed particle's classes are already all CLASS_NONE and stay
        // there.
        return;
    }
    let window = sys.window25(pos);
    let interior = (window & moves::WINDOW25_NEIGHBORS).count_ones() == 6;
    let mut bits = dmask;
    while bits != 0 {
        let d = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let class = if interior {
            CLASS_NONE
        } else {
            let dir = Direction::from_index(d);
            let ctx = MoveContext {
                sys,
                id,
                from: pos,
                dir,
                validity: moves::check_move_in_window25(window, dir),
            };
            class_of_move(hamiltonian, delta_min, &ctx)
        };
        masses.set(base + d, class);
    }
}

/// A drawn-but-not-yet-realized geometric dwell.
#[derive(Clone, Copy, Debug)]
struct Dwell {
    /// Absolute step index of the next accepted move.
    at: u64,
    /// Rejected steps the dwell skips (recorded into [`KmcCounts`] only
    /// when the acceptance actually executes).
    skipped: u64,
}

/// A rejection-free sampler of Markov chain `M`, equal in law to
/// [`crate::chain::CompressionChain`] at step granularity (see the
/// [module docs](self) for the argument) but doing work proportional to
/// *accepted* moves only.
///
/// The API mirrors the naive chain — [`KmcChain::run`],
/// [`KmcChain::run_until_compressed`], [`KmcChain::trajectory`],
/// [`KmcChain::sample`], crash injection and text snapshots — with
/// [`KmcCounts`] in place of per-category rejection counts.
///
/// # Example
///
/// ```
/// use sops_core::kmc::KmcChain;
/// use sops_system::{shapes, ParticleSystem};
///
/// let start = ParticleSystem::connected(shapes::spiral(50)).unwrap();
/// let mut kmc = KmcChain::from_seed(start, 6.0, 1).unwrap();
/// let accepted = kmc.run(100_000);
/// assert_eq!(kmc.steps(), 100_000);
/// assert!(accepted > 0 && kmc.system().is_connected());
/// ```
#[derive(Clone, Debug)]
pub struct KmcChain<R: Rng = StdRng, H: Hamiltonian = EdgeCount> {
    sys: ParticleSystem,
    lambda: f64,
    hamiltonian: H,
    /// `weight[c]` = `min(1, λ^(delta_min + c))`: the acceptance mass of
    /// class `c`.
    weight: Vec<f64>,
    /// Cached `hamiltonian.delta_min()` — the class-index offset.
    delta_min: i32,
    masses: MassTable,
    rng: R,
    steps: u64,
    /// The next accepted move, when its dwell is already drawn.
    pending: Option<Dwell>,
    counts: KmcCounts,
    /// Telemetry side channel: never serialized, never read by the
    /// algorithm (see [`crate::probes`] for the determinism contract).
    probes: KmcProbes,
    /// Hole-free latch + reusable trace scratch (shared implementation
    /// with the naive chain; scratch is transient, not part of snapshots).
    measure: HoleTracker,
    crashed: Vec<bool>,
    crashed_count: usize,
    validate: bool,
}

impl KmcChain<StdRng> {
    /// Builds an edge-count sampler with a [`StdRng`] seeded from `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`KmcChain::new`].
    pub fn from_seed(
        sys: ParticleSystem,
        lambda: f64,
        seed: u64,
    ) -> Result<KmcChain<StdRng>, ChainError> {
        KmcChain::new(sys, lambda, StdRng::seed_from_u64(seed))
    }
}

impl<H: Hamiltonian> KmcChain<StdRng, H> {
    /// Builds a sampler over `hamiltonian` with a [`StdRng`] seeded from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`KmcChain::with_hamiltonian`].
    pub fn from_seed_with(
        sys: ParticleSystem,
        lambda: f64,
        seed: u64,
        hamiltonian: H,
    ) -> Result<KmcChain<StdRng, H>, ChainError> {
        KmcChain::with_hamiltonian(sys, lambda, StdRng::seed_from_u64(seed), hamiltonian)
    }

    /// Serializes the sampler state as a compact text snapshot.
    ///
    /// The acceptance-mass table is *not* stored: it is a pure function of
    /// the configuration and crash set, and [`KmcChain::restore`] rebuilds
    /// it deterministically — snapshots stay the size of the configuration.
    /// The pending dwell (if drawn) is stored, so restoring and continuing
    /// reproduces the uninterrupted trajectory bit for bit. The
    /// `hamiltonian` and `orientations` lines appear only for non-default
    /// Hamiltonians / oriented configurations, keeping default snapshots
    /// byte-identical to the pre-trait format.
    #[must_use]
    pub fn snapshot(&self) -> String {
        use core::fmt::Write as _;
        let crashed: Vec<String> = self
            .crashed
            .iter()
            .enumerate()
            .filter(|(_, &dead)| dead)
            .map(|(id, _)| id.to_string())
            .collect();
        let pending = self
            .pending
            .map_or_else(|| "none".into(), |d| format!("{},{}", d.at, d.skipped));
        let mut s = String::from("sops-kmc-snapshot v1\n");
        let _ = writeln!(s, "lambda={}", snapshot::f64_to_hex(self.lambda));
        let name = self.hamiltonian.name();
        if name != "edges" {
            let _ = writeln!(s, "hamiltonian={name}");
        }
        let _ = writeln!(s, "steps={}", self.steps);
        let _ = writeln!(s, "counts={},{}", self.counts.moved, self.counts.max_jump);
        let _ = writeln!(s, "pending={pending}");
        let _ = writeln!(s, "hole_free={}", u8::from(self.measure.latched()));
        let _ = writeln!(s, "validate={}", u8::from(self.validate));
        let _ = writeln!(s, "crashed={}", crashed.join(","));
        let _ = writeln!(s, "rng={}", snapshot::rng_to_string(&self.rng));
        let _ = writeln!(
            s,
            "positions={}",
            snapshot::points_to_string(self.sys.positions().iter().copied())
        );
        if let Some(orientations) = self.sys.orientations() {
            let _ = writeln!(s, "orientations={}", snapshot::u8s_to_string(orientations));
        }
        s
    }

    /// Rebuilds a sampler from a [`KmcChain::snapshot`] text.
    ///
    /// The snapshot's `hamiltonian` line (default: `edges`) must describe
    /// an instance of `H`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the text is malformed or describes an invalid
    /// state.
    pub fn restore(text: &str) -> Result<KmcChain<StdRng, H>, SnapshotError> {
        let fields = snapshot::Fields::parse(text, "sops-kmc-snapshot v1")?;
        let positions = snapshot::points_from_string("positions", fields.get("positions")?)?;
        let mut sys = ParticleSystem::connected(positions)
            .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        sys = snapshot::attach_orientations(sys, &fields)?;
        let hamiltonian = snapshot::hamiltonian_from_fields::<H>(&fields)?;
        let lambda = fields.parse_f64_bits("lambda")?;
        let rng = snapshot::rng_from_string("rng", fields.get("rng")?)?;
        let mut kmc = KmcChain::with_hamiltonian(sys, lambda, rng, hamiltonian)
            .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        kmc.steps = fields.parse_num("steps")?;
        let counts: Vec<u64> = fields.parse_list("counts")?;
        let [moved, max_jump] = counts[..] else {
            return Err(SnapshotError::BadField {
                field: "counts",
                value: fields.get("counts")?.to_string(),
            });
        };
        kmc.counts = KmcCounts { moved, max_jump };
        kmc.measure
            .set_latched(fields.parse_num::<u8>("hole_free")? != 0);
        kmc.validate = fields.parse_num::<u8>("validate")? != 0;
        for id in fields.parse_list::<usize>("crashed")? {
            if id >= kmc.crashed.len() {
                return Err(SnapshotError::Invalid(format!(
                    "crashed id {id} out of range for {} particles",
                    kmc.crashed.len()
                )));
            }
            kmc.crash(id);
        }
        // After crash() above, which clears any pending dwell: the stored
        // dwell was drawn against the post-crash mass, so restore it last.
        let pending_raw = fields.get("pending")?;
        kmc.pending = if pending_raw == "none" {
            None
        } else {
            let dwell: Vec<u64> = fields.parse_list("pending")?;
            let [at, skipped] = dwell[..] else {
                return Err(SnapshotError::BadField {
                    field: "pending",
                    value: pending_raw.to_string(),
                });
            };
            if at <= kmc.steps {
                return Err(SnapshotError::Invalid(format!(
                    "pending acceptance at step {at} does not lie after step {}",
                    kmc.steps
                )));
            }
            Some(Dwell { at, skipped })
        };
        Ok(kmc)
    }
}

impl<R: Rng> KmcChain<R> {
    /// Builds the paper's edge-count sampler from a connected starting
    /// configuration and bias `λ`, computing the initial acceptance-mass
    /// table in O(n).
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] for non-finite or non-positive `λ`,
    /// [`ChainError::NotConnected`] for a disconnected start.
    pub fn new(sys: ParticleSystem, lambda: f64, rng: R) -> Result<KmcChain<R>, ChainError> {
        KmcChain::with_hamiltonian(sys, lambda, rng, EdgeCount)
    }
}

impl<R: Rng, H: Hamiltonian> KmcChain<R, H> {
    /// Builds the sampler over an explicit [`Hamiltonian`]; equal in law to
    /// [`crate::chain::CompressionChain::with_hamiltonian`] with the same
    /// Hamiltonian, at step granularity.
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] for non-finite or non-positive `λ`,
    /// [`ChainError::NotConnected`] for a disconnected start, and
    /// [`ChainError::Hamiltonian`] when the Hamiltonian rejects the
    /// configuration or declares an unusable delta range.
    pub fn with_hamiltonian(
        sys: ParticleSystem,
        lambda: f64,
        rng: R,
        hamiltonian: H,
    ) -> Result<KmcChain<R, H>, ChainError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ChainError::InvalidLambda(lambda));
        }
        if !sys.is_connected() {
            return Err(ChainError::NotConnected);
        }
        hamiltonian
            .validate(&sys)
            .map_err(ChainError::Hamiltonian)?;
        let (delta_min, delta_max) = (hamiltonian.delta_min(), hamiltonian.delta_max());
        if delta_min > delta_max || delta_max.saturating_sub(delta_min) > 254 {
            return Err(ChainError::Hamiltonian(format!(
                "unusable delta range [{delta_min}, {delta_max}]"
            )));
        }
        let weight: Vec<f64> = (delta_min..=delta_max)
            .map(|d| lambda.powi(d).min(1.0))
            .collect();
        let classes = weight.len();
        let hole_free = sys.hole_count() == 0;
        let n = sys.len();
        let mut kmc = KmcChain {
            sys,
            lambda,
            hamiltonian,
            weight,
            delta_min,
            masses: MassTable::new(6 * n, classes),
            rng,
            steps: 0,
            pending: None,
            counts: KmcCounts::default(),
            probes: KmcProbes::default(),
            measure: HoleTracker::new(hole_free),
            crashed: vec![false; n],
            crashed_count: 0,
            validate: false,
        };
        for id in 0..n {
            kmc.refresh_particle(id, kmc.sys.position(id));
        }
        Ok(kmc)
    }

    /// The bias parameter `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The Hamiltonian driving the acceptance masses.
    #[must_use]
    pub fn hamiltonian(&self) -> &H {
        &self.hamiltonian
    }

    /// The current configuration.
    #[must_use]
    pub fn system(&self) -> &ParticleSystem {
        &self.sys
    }

    /// Consumes the sampler and returns the final configuration.
    #[must_use]
    pub fn into_system(self) -> ParticleSystem {
        self.sys
    }

    /// Number of chain steps simulated so far (including skipped
    /// rejections).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Outcome counters since construction.
    #[must_use]
    pub fn counts(&self) -> KmcCounts {
        self.counts
    }

    /// Telemetry probes accumulated since construction (or since the last
    /// restore — probes are not part of snapshots).
    #[must_use]
    pub fn probes(&self) -> &KmcProbes {
        &self.probes
    }

    /// Fraction of simulated steps that moved a particle.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.counts.moved as f64 / self.steps as f64
    }

    /// Enables per-accepted-move invariant validation (connectivity,
    /// hole-freeness and mass-table coherence re-checked after every
    /// accepted move). Expensive; intended for tests.
    pub fn set_validation(&mut self, enabled: bool) {
        self.validate = enabled;
    }

    /// Marks a particle as crashed: it stays in place forever and acts as a
    /// fixed obstacle (Section 3.3). Returns the previous crash state.
    ///
    /// Zeroes the particle's six masses and discards any pending dwell —
    /// the geometric law is memoryless, so redrawing against the reduced
    /// mass is exact.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn crash(&mut self, id: usize) -> bool {
        let was = self.crashed[id];
        if !was {
            self.crashed[id] = true;
            self.crashed_count += 1;
            for d in 0..6 {
                self.masses.set(id * 6 + d, CLASS_NONE);
            }
            self.pending = None;
        }
        was
    }

    /// Number of crashed particles.
    #[must_use]
    pub fn crashed_count(&self) -> usize {
        self.crashed_count
    }

    /// The current per-class pair counts, as maintained incrementally.
    ///
    /// Class `c` holds the structurally valid pairs with energy delta
    /// `Δ = delta_min + c` (`c − 5` for the default edge count); the total
    /// acceptance mass is the histogram folded against `min(1, λ^Δ)`.
    /// Exposed for the incremental-vs-recomputed property test and for
    /// diagnostics.
    #[must_use]
    pub fn mass_histogram(&self) -> Vec<u64> {
        self.masses.histogram()
    }

    /// The per-class pair counts recomputed from scratch off the current
    /// configuration — the oracle [`KmcChain::mass_histogram`] must equal
    /// exactly (both are integral, so equality is not approximate).
    #[must_use]
    pub fn recomputed_mass_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.weight.len()];
        for id in 0..self.sys.len() {
            if self.crashed[id] {
                continue;
            }
            let from = self.sys.position(id);
            for dir in Direction::ALL {
                // Deliberately through the grid-backed check_move, not the
                // window gather: the recount is an independent oracle.
                let ctx = MoveContext {
                    sys: &self.sys,
                    id,
                    from,
                    dir,
                    validity: self.sys.check_move(from, dir),
                };
                let c = class_of_move(&self.hamiltonian, self.delta_min, &ctx);
                if c != CLASS_NONE {
                    h[c as usize] += 1;
                }
            }
        }
        h
    }

    /// The total acceptance mass `S = Σ a(P, d)`.
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.masses.total(&self.weight)
    }

    /// `true` once the configuration is hole-free; monotone by Lemma 3.2.
    pub fn is_hole_free(&mut self) -> bool {
        self.measure.is_hole_free(&self.sys)
    }

    /// The current perimeter `p(σ)`, through one boundary trace at most
    /// (none once the chain is known hole-free).
    #[must_use = "perimeter is a measurement; ignoring it wastes a flood fill"]
    pub fn perimeter(&mut self) -> u64 {
        self.measure.perimeter(&self.sys)
    }

    /// Recomputes all six masses of the particle `id` at `pos`.
    fn refresh_particle(&mut self, id: usize, pos: TriPoint) {
        refresh_masses(
            &self.hamiltonian,
            self.delta_min,
            &self.sys,
            &self.crashed,
            &mut self.masses,
            id,
            pos,
            0x3f,
        );
    }

    /// The next accepted move's dwell, drawing it if none is pending.
    /// `None` when the acceptance mass is zero (no move will ever be
    /// accepted from this state).
    fn next_acceptance(&mut self) -> Option<Dwell> {
        if let Some(dwell) = self.pending {
            return Some(dwell);
        }
        let total = self.masses.total(&self.weight);
        if total <= 0.0 {
            return None;
        }
        let p = (total / (6.0 * self.sys.len() as f64)).min(1.0);
        let skipped = if p >= 1.0 {
            0
        } else {
            // Invert the geometric CDF: K = ⌊ln(1 − u) / ln(1 − p)⌋ has
            // P(K = k) = (1 − p)^k · p for u uniform in [0, 1).
            let u: f64 = self.rng.gen();
            let k = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
            if k.is_finite() && k >= 0.0 && k <= u64::MAX as f64 / 4.0 {
                k as u64
            } else {
                u64::MAX / 4
            }
        };
        let dwell = Dwell {
            at: self.steps.saturating_add(skipped).saturating_add(1),
            skipped,
        };
        self.pending = Some(dwell);
        Some(dwell)
    }

    /// Applies the next accepted move (the step counter must already sit on
    /// the acceptance index) and revalidates its neighborhood.
    fn accept_move(&mut self) {
        let total = self.masses.total(&self.weight);
        let k = self.masses.sample(&self.weight, total, &mut self.rng) as usize;
        let id = k / 6;
        let dir = Direction::from_index(k % 6);
        let from = self.sys.position(id);
        self.sys
            .move_particle(id, dir)
            .expect("mass table holds only structurally valid moves");
        self.counts.moved += 1;
        // Revalidate exactly the pairs the occupancy change can touch;
        // borrow the fields separately so the closure can mutate the table
        // while reading the configuration.
        let sys = &self.sys;
        let masses = &mut self.masses;
        let crashed = &self.crashed;
        let hamiltonian = &self.hamiltonian;
        let delta_min = self.delta_min;
        let mut fanout = 0u64;
        sys.for_each_particle_near_move(from, dir, |qid, qpos, dmask| {
            fanout += u64::from(dmask.count_ones());
            refresh_masses(
                hamiltonian,
                delta_min,
                sys,
                crashed,
                masses,
                qid,
                qpos,
                dmask,
            );
        });
        self.probes.revalidation_fanout.record(fanout);
        if self.validate {
            assert!(self.sys.is_connected(), "Lemma 3.1 violated: disconnected");
            if self.measure.latched() {
                assert_eq!(self.sys.hole_count(), 0, "Lemma 3.2 violated: hole");
            }
            self.assert_invariants();
        }
    }

    /// Simulates exactly `steps` steps of `M` and returns the number of
    /// accepted moves, doing work proportional to the accepted moves only.
    pub fn run(&mut self, steps: u64) -> u64 {
        let before = self.counts.moved;
        let target = self.steps.saturating_add(steps);
        while self.steps < target {
            let Some(dwell) = self.next_acceptance() else {
                // Zero acceptance mass: every remaining step is a no-op.
                self.steps = target;
                break;
            };
            if dwell.at > target {
                // The dwell extends past this budget; keep it pending
                // (memorylessness makes either choice exact, keeping it is
                // deterministic for snapshots) and burn the budget.
                self.steps = target;
                break;
            }
            self.steps = dwell.at;
            self.pending = None;
            // The dwell is realized — only now does it count.
            self.counts.max_jump = self.counts.max_jump.max(dwell.skipped);
            self.probes.dwell.record(dwell.skipped);
            self.accept_move();
        }
        self.counts.moved - before
    }

    /// Runs until the configuration is α-compressed (`p ≤ α · pmin`) or
    /// `max_steps` elapse; returns the step count at first hit.
    ///
    /// Checks the perimeter every `n` steps, on the same step grid as
    /// [`crate::chain::CompressionChain::run_until_compressed`] — first-hit
    /// distributions are comparable between the two samplers.
    pub fn run_until_compressed(&mut self, alpha: f64, max_steps: u64) -> Option<u64> {
        let n = self.sys.len() as u64;
        let target = alpha * metrics::pmin(self.sys.len()) as f64;
        let check_every = n.max(1);
        let start = self.steps;
        loop {
            if self.perimeter() as f64 <= target {
                return Some(self.steps);
            }
            if self.steps - start >= max_steps {
                return None;
            }
            self.run(check_every);
        }
    }

    /// Samples the current trajectory point (perimeter, edges, ratios),
    /// identically to [`crate::chain::CompressionChain::sample`].
    pub fn sample(&mut self) -> TrajectoryPoint {
        self.measure.sample(&self.sys, self.steps)
    }

    /// Runs the sampler, sampling every `interval` steps, for `total` steps
    /// — the same step-indexed schedule as
    /// [`crate::chain::CompressionChain::trajectory`].
    pub fn trajectory(&mut self, total: u64, interval: u64) -> Vec<TrajectoryPoint> {
        let interval = interval.max(1);
        let mut points = vec![self.sample()];
        let mut done = 0u64;
        while done < total {
            let burst = interval.min(total - done);
            self.run(burst);
            done += burst;
            points.push(self.sample());
        }
        points
    }

    /// Checks internal invariants: configuration coherence and exact
    /// agreement of the incremental mass table with a from-scratch recount.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn assert_invariants(&self) {
        self.sys.assert_invariants();
        self.masses.assert_valid();
        assert_eq!(
            self.mass_histogram(),
            self.recomputed_mass_histogram(),
            "incremental acceptance masses drifted from the configuration"
        );
    }
}

impl<R: Rng, H: Hamiltonian> fmt::Display for KmcChain<R, H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KmcChain(n={}, λ={}, steps={}, accepted={})",
            self.sys.len(),
            self.lambda,
            self.steps,
            self.counts.moved
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_system::shapes;

    fn line_kmc(n: usize, lambda: f64, seed: u64) -> KmcChain {
        let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
        KmcChain::from_seed(sys, lambda, seed).unwrap()
    }

    #[test]
    fn rejects_bad_lambda_and_disconnected_start() {
        let sys = ParticleSystem::connected(shapes::line(3)).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = KmcChain::from_seed(sys.clone(), bad, 0).unwrap_err();
            assert!(matches!(err, ChainError::InvalidLambda(_)), "{bad}");
        }
        let apart = ParticleSystem::new([TriPoint::new(0, 0), TriPoint::new(9, 9)]).unwrap();
        let err = KmcChain::from_seed(apart, 2.0, 0).unwrap_err();
        assert!(matches!(err, ChainError::NotConnected));
    }

    #[test]
    fn run_advances_exactly_and_reproducibly() {
        let mut a = line_kmc(10, 4.0, 42);
        let mut b = line_kmc(10, 4.0, 42);
        a.run(5_000);
        b.run(2_500);
        b.run(2_500);
        assert_eq!(a.steps(), 5_000);
        assert_eq!(b.steps(), 5_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().canonical_key(), b.system().canonical_key());
    }

    #[test]
    fn masses_stay_exact_under_long_runs() {
        let mut kmc = line_kmc(15, 3.0, 7);
        kmc.run(50_000);
        kmc.assert_invariants();
        assert!(kmc.counts().moved > 0);
        assert!(kmc.acceptance_rate() > 0.0 && kmc.acceptance_rate() < 1.0);
    }

    #[test]
    fn validation_mode_checks_every_accepted_move() {
        let mut kmc = line_kmc(12, 4.0, 3);
        kmc.set_validation(true);
        kmc.run(20_000);
        assert!(kmc.system().is_connected());
        assert!(kmc.is_hole_free());
    }

    #[test]
    fn compresses_at_high_lambda() {
        let mut kmc = line_kmc(20, 5.0, 9);
        kmc.run(200_000);
        let p = kmc.perimeter();
        assert!(
            p <= 2 * metrics::pmin(20),
            "perimeter {p} should approach pmin = {}",
            metrics::pmin(20)
        );
    }

    #[test]
    fn eliminates_holes_from_annulus() {
        let sys = ParticleSystem::connected(shapes::annulus(3)).unwrap();
        let mut kmc = KmcChain::from_seed(sys, 4.0, 11).unwrap();
        assert!(!kmc.is_hole_free());
        kmc.run(200_000);
        assert!(kmc.is_hole_free(), "holes must eventually vanish");
        assert_eq!(kmc.perimeter(), kmc.system().perimeter());
    }

    #[test]
    fn single_particle_has_zero_mass_and_never_moves() {
        let sys = ParticleSystem::new([TriPoint::ORIGIN]).unwrap();
        let mut kmc = KmcChain::from_seed(sys, 4.0, 0).unwrap();
        assert_eq!(kmc.total_mass(), 0.0);
        assert_eq!(kmc.run(10_000), 0);
        assert_eq!(kmc.steps(), 10_000);
        assert_eq!(kmc.counts().moved, 0);
    }

    #[test]
    fn crashed_particles_never_move_and_drop_their_mass() {
        let mut kmc = line_kmc(10, 4.0, 5);
        let frozen = kmc.system().position(0);
        assert!(!kmc.crash(0));
        assert!(kmc.crash(0), "second crash reports prior state");
        assert_eq!(kmc.crashed_count(), 1);
        kmc.assert_invariants();
        kmc.run(20_000);
        assert_eq!(kmc.system().position(0), frozen);
        kmc.assert_invariants();
    }

    #[test]
    fn all_crashed_system_is_frozen() {
        let mut kmc = line_kmc(5, 4.0, 1);
        for id in 0..5 {
            kmc.crash(id);
        }
        assert_eq!(kmc.total_mass(), 0.0);
        assert_eq!(kmc.run(5_000), 0);
        assert_eq!(kmc.steps(), 5_000);
    }

    #[test]
    fn run_until_compressed_reports_first_hit() {
        let mut kmc = line_kmc(15, 6.0, 11);
        let hit = kmc.run_until_compressed(1.8, 2_000_000);
        assert!(hit.is_some(), "λ=6 must compress a 15-particle line");
        let p = kmc.perimeter() as f64;
        assert!(p <= 1.8 * metrics::pmin(15) as f64);
    }

    #[test]
    fn trajectory_matches_chain_schedule() {
        let mut kmc = line_kmc(10, 2.0, 13);
        let traj = kmc.trajectory(1000, 100);
        assert_eq!(traj.len(), 11);
        for w in traj.windows(2) {
            assert!(w[0].step < w[1].step);
        }
        for pt in traj {
            assert_eq!(pt.holes, 0);
            assert_eq!(pt.edges, 3 * 10 - pt.perimeter - 3);
        }
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let mut a = line_kmc(12, 4.0, 99);
        a.run(3_333);
        let snap = a.snapshot();
        let mut b: KmcChain = KmcChain::restore(&snap).unwrap();
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.counts(), b.counts());
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().positions(), b.system().positions());
    }

    #[test]
    fn snapshot_preserves_crash_set_and_flags() {
        let mut a = line_kmc(10, 3.0, 4);
        a.crash(2);
        a.crash(7);
        a.set_validation(true);
        a.run(1_000);
        let b: KmcChain = KmcChain::restore(&a.snapshot()).unwrap();
        assert_eq!(b.crashed_count(), 2);
        assert!((b.lambda() - 3.0).abs() < 1e-15);
        assert_eq!(b.mass_histogram(), a.mass_histogram());
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        assert!(matches!(
            KmcChain::<StdRng>::restore("not a snapshot").unwrap_err(),
            SnapshotError::WrongHeader { .. }
        ));
        let valid = line_kmc(5, 2.0, 1).snapshot();
        let truncated: String = valid
            .lines()
            .filter(|l| !l.starts_with("pending="))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(matches!(
            KmcChain::<StdRng>::restore(&truncated).unwrap_err(),
            SnapshotError::MissingField("pending")
        ));
        // A pending acceptance at or before the restored step counter would
        // rewind the chain; such snapshots are rejected, not replayed.
        let mut ran = line_kmc(5, 2.0, 1);
        ran.run(1_000);
        let rewound: String = ran
            .snapshot()
            .lines()
            .map(|l| {
                if l.starts_with("pending=") {
                    "pending=5,3\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        assert!(matches!(
            KmcChain::<StdRng>::restore(&rewound).unwrap_err(),
            SnapshotError::Invalid(_)
        ));
    }

    #[test]
    fn lambda_below_one_weights_positive_deltas() {
        // For λ < 1, gaining edges is *penalized*: classes with δ > 0 carry
        // mass λ^δ < 1. The sampler must still be exact.
        let mut kmc = line_kmc(8, 0.5, 21);
        kmc.run(30_000);
        kmc.assert_invariants();
        assert!(kmc.counts().moved > 0);
    }

    #[test]
    fn alignment_kmc_masses_stay_exact_and_snapshots_round_trip() {
        use crate::hamiltonian::Alignment;
        let sys = ParticleSystem::connected(shapes::line(14))
            .unwrap()
            .with_random_orientations(3, 9);
        let mut a = KmcChain::from_seed_with(sys, 3.0, 11, Alignment::new(3)).unwrap();
        // Validation re-checks the incremental mass table against a
        // from-scratch recount after every accepted move — this is the
        // locality contract of the alignment Hamiltonian under test.
        a.set_validation(true);
        a.run(20_000);
        a.assert_invariants();
        assert!(a.counts().moved > 0);
        let snap = a.snapshot();
        assert!(snap.contains("hamiltonian=alignment:3"));
        assert!(snap.contains("orientations="));
        let mut b: KmcChain<StdRng, Alignment> = KmcChain::restore(&snap).unwrap();
        assert_eq!(b.mass_histogram(), a.mass_histogram());
        a.run(5_000);
        b.run(5_000);
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.system().positions(), b.system().positions());
        assert_eq!(a.system().orientations(), b.system().orientations());
        // Wrong restore type is rejected.
        assert!(matches!(
            KmcChain::<StdRng>::restore(&snap).unwrap_err(),
            SnapshotError::Invalid(_)
        ));
    }

    #[test]
    fn max_jump_tracks_dwell_sizes() {
        // A compressed blob at high λ rejects nearly always; dwells between
        // accepted moves must show up in max_jump.
        let sys = ParticleSystem::connected(shapes::spiral(60)).unwrap();
        let mut kmc = KmcChain::from_seed(sys, 6.0, 2).unwrap();
        kmc.run(100_000);
        assert!(kmc.counts().max_jump > 0);
        // Realized dwells only: a dwell can never skip more steps than were
        // simulated.
        assert!(kmc.counts().max_jump < kmc.steps());
    }

    #[test]
    fn unrealized_dwells_never_count() {
        // A run budget too short for the first acceptance leaves the dwell
        // pending, and a pending dwell must not be reported as a jump.
        let sys = ParticleSystem::connected(shapes::spiral(60)).unwrap();
        let mut kmc = KmcChain::from_seed(sys, 50.0, 4).unwrap();
        // λ = 50 at a compressed spiral: the first dwell is overwhelmingly
        // likely to exceed one step.
        kmc.run(1);
        if kmc.counts().moved == 0 {
            assert_eq!(kmc.counts().max_jump, 0, "pending dwell leaked");
        }
        // A crash discards the pending dwell entirely; still nothing
        // recorded.
        kmc.crash(0);
        if kmc.counts().moved == 0 {
            assert_eq!(kmc.counts().max_jump, 0);
        }
    }
}
