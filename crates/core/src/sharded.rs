//! The synchronous, checkerboard-scheduled variant of the local algorithm
//! `A`, designed for intra-run sharding across cores.
//!
//! # The algorithm
//!
//! [`LocalRunner`](crate::local::LocalRunner) is a faithful asynchronous
//! simulator: one global Poisson event queue, one sequential RNG stream.
//! That trajectory is inherently serial — replaying it in parallel byte for
//! byte is impossible, because every activation consumes the next draws of
//! a single stream in global event-time order.
//!
//! [`ShardedLocalRunner`] keeps the *particle rule* of Algorithm `A` —
//! steps 1–13, verbatim, including the `flag` serialization protocol and
//! the `N*` neighborhoods — but replaces the Poisson clocks with a fixed
//! synchronous schedule built on [`RegionMap`]: each round visits the four
//! checkerboard colors in order; within a color, every region holding at
//! least one live particle activates its particles once each, in particle-id
//! order, consuming a private RNG stream seeded by SplitMix64-style mixing
//! of `(seed, region, round)`. Regions of the same color are at least one
//! full region apart — farther than the rule's read radius of 2 sites — so
//! their updates commute and the trajectory is a pure function of
//! `(start, λ, seed, region_tiles)`.
//!
//! # Unsharded vs sharded execution
//!
//! The runner has two independent implementations of that schedule:
//!
//! * [`ShardedLocalRunner::run_rounds`] — the **unsharded reference**: one
//!   flat occupancy grid, one sequential pass in schedule order.
//! * [`ShardedLocalRunner::run_rounds_with`] — the **sharded executor**:
//!   per-region cells own their particles and a private [`TileGrid`];
//!   each color step ships the active cells to a [`StepExecutor`] as
//!   self-contained [`ShardTask`]s (cell + halo of neighbor rims + stream
//!   seed); boundary state moves as rim exports and emigrant particles at
//!   deterministic merge points.
//!
//! Both produce **byte-identical** results at any worker count — the
//! differential harness in `crates/system/tests/shard_differential.rs` is
//! the merge gate for that claim. The worker/shard count is an execution
//! detail like `--threads`, never simulation state: snapshots serialize the
//! flat configuration only, so checkpoints are portable across shard
//! counts. `region_tiles` *is* semantic (it changes the schedule), which is
//! why it lives in the snapshot.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_lattice::{Direction, PairRing, RegionId, RegionMap, TileGrid, TriPoint, REGION_COLORS};
use sops_system::{moves::MoveValidity, ParticleSystem};

use crate::chain::ChainError;
use crate::local::Activation;
use crate::probes::LocalProbes;
use crate::snapshot::{self, SnapshotError};

/// Default region edge length in tiles (16×16 sites): large enough that
/// halo traffic stays a small fraction of region area, small enough that a
/// compressed million-particle blob still yields thousands of regions.
pub const DEFAULT_REGION_TILES: u32 = 2;

/// Sites this close to a region border (or beyond it — overhang heads) are
/// exported in the region's rim: the local rule reads at distance ≤ 2.
const RIM_MARGIN: i32 = 2;

/// Salt separating shard streams from every other seed-derived stream in
/// the workspace (job child seeds, crash-victim streams, orientations).
const SHARD_SALT: u64 = 0x5bd1_e995_ca55_e77e;

/// SplitMix64 finalizer: the bijective avalanche at the core of the
/// engine's seed derivation (see `sops_engine::seed`), reused here to mix
/// `(seed, region, round)` into independent per-region-step streams.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The RNG stream seed for one region's activations in one round — a pure
/// function of `(base seed, region, round)`, independent of worker count,
/// wall clock, and iteration order.
#[must_use]
pub fn region_stream_seed(seed: u64, region: RegionId, round: u64) -> u64 {
    let key = (u64::from(region.0 as u32) << 32) | u64::from(region.1 as u32);
    mix(mix(mix(seed ^ SHARD_SALT) ^ key) ^ round)
}

#[derive(Clone, Copy, Debug)]
struct Particle {
    tail: TriPoint,
    head: Option<TriPoint>,
    flag: bool,
}

/// Occupancy slots in flat and cell grids: `(id << 1) | is_head`, the same
/// packing the asynchronous runner uses.
#[inline]
fn encode_slot(id: usize, is_head: bool) -> u32 {
    debug_assert!(id < (1 << 31), "particle id exceeds 31 bits");
    (id as u32) << 1 | u32::from(is_head)
}

#[inline]
fn decode_slot(value: u32) -> (usize, bool) {
    ((value >> 1) as usize, value & 1 != 0)
}

/// Rim exports carry one extra bit so readers never need the owner's
/// particle table: `(id << 2) | (expanded << 1) | is_head`.
#[inline]
fn encode_ghost(id: usize, is_head: bool, expanded: bool) -> u32 {
    debug_assert!(id < (1 << 30), "particle id exceeds 30 bits");
    (id as u32) << 2 | u32::from(expanded) << 1 | u32::from(is_head)
}

/// What one site lookup tells the particle rule: who is there, whether the
/// slot is a head, and whether its owner is currently expanded.
#[derive(Clone, Copy)]
struct SiteInfo {
    id: usize,
    is_head: bool,
    expanded: bool,
}

/// The bounded neighborhood view the particle rule runs against — backed
/// by the flat grid (reference path) or by a cell grid plus halo (sharded
/// path). Identical rule code over both views is what makes the
/// differential test meaningful rather than tautological.
trait World {
    fn site(&self, p: TriPoint) -> Option<SiteInfo>;
    fn get(&self, id: usize) -> Particle;
    fn set(&mut self, id: usize, particle: Particle);
    fn insert(&mut self, p: TriPoint, id: usize, is_head: bool);
    fn remove(&mut self, p: TriPoint);
}

fn has_expanded_neighbor(w: &impl World, p: TriPoint, id: usize) -> bool {
    p.neighbors()
        .any(|q| w.site(q).is_some_and(|s| s.id != id && s.expanded))
}

fn is_tail_of_other(w: &impl World, p: TriPoint, id: usize) -> bool {
    w.site(p).is_some_and(|s| s.id != id && !s.is_head)
}

/// Algorithm `A` for one activation of particle `id` — the same steps 1–13
/// as `LocalRunner::activate`, over an abstract neighborhood view.
fn activate_one<W: World, R: Rng>(
    w: &mut W,
    id: usize,
    lambda_pow: &[f64; 11],
    rng: &mut R,
) -> Activation {
    let particle = w.get(id);
    match particle.head {
        None => {
            // Step 2: choose ℓ′ uniformly among the six neighbors.
            let dir = Direction::from_index(rng.gen_range(0..6usize));
            let target = particle.tail + dir;
            // Step 3: require ℓ′ unoccupied and no expanded neighbors of ℓ.
            if w.site(target).is_some() || has_expanded_neighbor(w, particle.tail, id) {
                return Activation::Idle { id };
            }
            // Step 4: expand.
            w.insert(target, id, true);
            // Steps 5–7: set the flag.
            let flag = !has_expanded_neighbor(w, particle.tail, id)
                && !has_expanded_neighbor(w, target, id);
            w.set(
                id,
                Particle {
                    head: Some(target),
                    flag,
                    ..particle
                },
            );
            Activation::Expanded { id, flag }
        }
        Some(head) => {
            // Step 8: draw q.
            let q: f64 = rng.gen();
            // Steps 9–10: neighbor counts over N*(·).
            let dir = particle
                .tail
                .direction_to(head)
                .expect("head is adjacent to tail by construction");
            let ring = PairRing::new(particle.tail, dir);
            let mask = ring.occupancy_mask(|p| is_tail_of_other(w, p, id));
            let validity = MoveValidity::from_mask(mask, false);
            // Step 11: the four conditions.
            let delta = validity.edge_delta();
            let accept = !validity.five_neighbor_blocked()
                && (validity.property1 || validity.property2)
                && q < lambda_pow[(delta + 5) as usize]
                && particle.flag;
            if accept {
                // Step 12: contract to ℓ′.
                w.remove(particle.tail);
                w.insert(head, id, false);
                w.set(
                    id,
                    Particle {
                        tail: head,
                        head: None,
                        ..particle
                    },
                );
                Activation::ContractedForward { id }
            } else {
                // Step 13: contract back to ℓ.
                w.remove(head);
                w.set(
                    id,
                    Particle {
                        head: None,
                        ..particle
                    },
                );
                Activation::ContractedBack { id }
            }
        }
    }
}

/// Reference view: the flat global grid and the full particle table.
struct FlatWorld<'a> {
    particles: &'a mut [Particle],
    occ: &'a mut TileGrid,
}

impl World for FlatWorld<'_> {
    fn site(&self, p: TriPoint) -> Option<SiteInfo> {
        self.occ.get(p).map(|v| {
            let (id, is_head) = decode_slot(v);
            SiteInfo {
                id,
                is_head,
                expanded: self.particles[id].head.is_some(),
            }
        })
    }

    fn get(&self, id: usize) -> Particle {
        self.particles[id]
    }

    fn set(&mut self, id: usize, particle: Particle) {
        self.particles[id] = particle;
    }

    fn insert(&mut self, p: TriPoint, id: usize, is_head: bool) {
        self.occ.insert(p, encode_slot(id, is_head));
    }

    fn remove(&mut self, p: TriPoint) {
        self.occ.remove(p);
    }
}

/// One region's owned state in the sharded representation: its particles
/// (sorted by id), and a private grid holding exactly their sites —
/// including heads overhanging into neighbor regions (ownership follows
/// the *tail*).
struct RegionCell {
    region: RegionId,
    particles: Vec<(usize, Particle)>,
    grid: TileGrid,
}

impl RegionCell {
    fn new(region: RegionId) -> RegionCell {
        RegionCell {
            region,
            particles: Vec::new(),
            grid: TileGrid::new(),
        }
    }

    fn lookup(&self, id: usize) -> usize {
        self.particles
            .binary_search_by_key(&id, |e| e.0)
            .expect("cell grid slot must belong to a cell particle")
    }

    /// The rim export: every owned site outside the region or within
    /// [`RIM_MARGIN`] of its border, as ghost slots, in sorted site order.
    fn rim(&self, map: &RegionMap, scratch: &mut Vec<(u64, u32)>) -> Vec<(TriPoint, u32)> {
        let mut rim = Vec::new();
        self.grid.for_each_site_sorted(scratch, |p| {
            if map.is_rim_site(self.region, p, RIM_MARGIN) {
                let (id, is_head) = decode_slot(self.grid.get(p).expect("iterated site"));
                let expanded = self.particles[self.lookup(id)].1.head.is_some();
                rim.push((p, encode_ghost(id, is_head, expanded)));
            }
        });
        rim
    }
}

/// Sharded view: the cell's grid backed by a halo of frozen neighbor rims.
/// Writes go to owned sites only; halo owners are inactive for the whole
/// color step, so their frozen ghosts read exactly what the flat grid
/// would.
struct CellWorld<'a> {
    particles: &'a mut Vec<(usize, Particle)>,
    grid: &'a mut TileGrid,
    halo: &'a TileGrid,
}

impl CellWorld<'_> {
    fn lookup(&self, id: usize) -> usize {
        self.particles
            .binary_search_by_key(&id, |e| e.0)
            .expect("cell world indexes only owned particles")
    }
}

impl World for CellWorld<'_> {
    fn site(&self, p: TriPoint) -> Option<SiteInfo> {
        if let Some(v) = self.grid.get(p) {
            let (id, is_head) = decode_slot(v);
            let expanded = self.particles[self.lookup(id)].1.head.is_some();
            return Some(SiteInfo {
                id,
                is_head,
                expanded,
            });
        }
        self.halo.get(p).map(|g| SiteInfo {
            id: (g >> 2) as usize,
            is_head: g & 1 != 0,
            expanded: g & 2 != 0,
        })
    }

    fn get(&self, id: usize) -> Particle {
        self.particles[self.lookup(id)].1
    }

    fn set(&mut self, id: usize, particle: Particle) {
        let at = self.lookup(id);
        self.particles[at].1 = particle;
    }

    fn insert(&mut self, p: TriPoint, id: usize, is_head: bool) {
        self.grid.insert(p, encode_slot(id, is_head));
    }

    fn remove(&mut self, p: TriPoint) {
        self.grid.remove(p);
    }
}

/// One region's work for one color step, self-contained and `Send`: the
/// cell (moved out of the coordinator), the halo (cheap `Arc` clones of the
/// eight neighbor rims, frozen for the step), the stream seed, and the
/// crash set restricted to this cell.
pub struct ShardTask {
    cell: RegionCell,
    halo: Vec<Arc<Vec<(TriPoint, u32)>>>,
    stream: u64,
    lambda_pow: [f64; 11],
    crashed: Vec<usize>,
    map: RegionMap,
}

/// What a completed [`ShardTask`] hands back for the deterministic merge.
pub struct ShardStepOut {
    cell: RegionCell,
    rim: Vec<(TriPoint, u32)>,
    emigrants: Vec<(usize, Particle)>,
    activations: u64,
    moves: u64,
    probes: LocalProbes,
}

impl ShardTask {
    /// Runs the region's color step: activate each live particle once in id
    /// order against the cell-plus-halo view, extract emigrants (tails that
    /// crossed the border via forward contraction), and re-export the rim.
    ///
    /// Pure: the output depends only on the task. Executors may run tasks
    /// in any order on any threads as long as outputs are returned in task
    /// order.
    #[must_use]
    pub fn run(mut self) -> ShardStepOut {
        let halo_sites: usize = self.halo.iter().map(|rim| rim.len()).sum();
        let mut halo = TileGrid::with_site_capacity(halo_sites.max(1));
        for rim in &self.halo {
            for &(p, g) in rim.iter() {
                halo.insert(p, g);
            }
        }
        let ids: Vec<usize> = self
            .cell
            .particles
            .iter()
            .map(|e| e.0)
            .filter(|id| self.crashed.binary_search(id).is_err())
            .collect();
        let mut rng = StdRng::seed_from_u64(self.stream);
        let mut probes = LocalProbes::default();
        let mut moves = 0u64;
        {
            let mut world = CellWorld {
                particles: &mut self.cell.particles,
                grid: &mut self.cell.grid,
                halo: &halo,
            };
            for &id in &ids {
                match activate_one(&mut world, id, &self.lambda_pow, &mut rng) {
                    Activation::Expanded { .. } => probes.expanded += 1,
                    Activation::ContractedForward { .. } => {
                        probes.contracted_forward += 1;
                        moves += 1;
                    }
                    Activation::ContractedBack { .. } => probes.contracted_back += 1,
                    Activation::Idle { .. } => probes.idle += 1,
                    Activation::Crashed { .. } => unreachable!("crashed ids are filtered"),
                }
            }
        }
        // Extract emigrants: a forward contraction can move a tail across
        // the border (by at most one site, so always into an adjacent
        // region). They leave this cell — grid sites included — and the
        // coordinator routes them at the merge point.
        let mut emigrants = Vec::new();
        let region = self.cell.region;
        let map = self.map;
        self.cell.particles.retain(|&(id, p)| {
            if map.region_of(p.tail) == region {
                return true;
            }
            debug_assert!(p.head.is_none(), "emigrants are contracted");
            emigrants.push((id, p));
            false
        });
        for &(_, p) in &emigrants {
            self.cell.grid.remove(p.tail);
        }
        let mut scratch = Vec::new();
        let rim = self.cell.rim(&map, &mut scratch);
        ShardStepOut {
            cell: self.cell,
            rim,
            emigrants,
            activations: ids.len() as u64,
            moves,
            probes,
        }
    }
}

/// Executes the tasks of one color step, returning outputs **in task
/// order**. Implementations are free to run tasks concurrently — every
/// task is pure and tasks of one step touch disjoint state.
///
/// `sops_core` ships [`SerialExecutor`]; `sops_engine` provides the
/// worker-pool executor behind `--shards`.
pub trait StepExecutor {
    /// Runs every task and returns the outputs in input order.
    fn run_step(&self, tasks: Vec<ShardTask>) -> Vec<ShardStepOut>;
}

/// Runs tasks one after another on the calling thread.
pub struct SerialExecutor;

impl StepExecutor for SerialExecutor {
    fn run_step(&self, tasks: Vec<ShardTask>) -> Vec<ShardStepOut> {
        tasks.into_iter().map(ShardTask::run).collect()
    }
}

/// The sharded representation while rounds are running: cells keyed by
/// region, plus the current rim export of every cell (`Arc`-shared so halo
/// assembly is O(1) per neighbor).
struct ShardState {
    cells: BTreeMap<RegionId, RegionCell>,
    rims: BTreeMap<RegionId, Arc<Vec<(TriPoint, u32)>>>,
}

/// The checkerboard-scheduled local algorithm (see the module docs).
///
/// # Example
///
/// ```
/// use sops_core::sharded::{SerialExecutor, ShardedLocalRunner};
/// use sops_system::{shapes, ParticleSystem};
///
/// let start = ParticleSystem::connected(shapes::line(12)).unwrap();
/// let mut a = ShardedLocalRunner::from_seed(&start, 4.0, 7).unwrap();
/// let mut b = ShardedLocalRunner::from_seed(&start, 4.0, 7).unwrap();
/// a.run_rounds(50); // unsharded reference
/// b.run_rounds_with(50, &SerialExecutor); // sharded machinery
/// assert_eq!(a.snapshot(), b.snapshot()); // byte-identical
/// ```
#[derive(Clone, Debug)]
pub struct ShardedLocalRunner {
    particles: Vec<Particle>,
    /// Flat occupancy — authoritative between `run_rounds*` calls.
    occ: TileGrid,
    lambda: f64,
    lambda_pow: [f64; 11],
    seed: u64,
    map: RegionMap,
    rounds: u64,
    activations: u64,
    moves_completed: u64,
    crashed: Vec<bool>,
    live: usize,
    probes: LocalProbes,
}

impl ShardedLocalRunner {
    /// Builds a runner with the default region size
    /// ([`DEFAULT_REGION_TILES`]).
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] or [`ChainError::NotConnected`].
    pub fn from_seed(
        start: &ParticleSystem,
        lambda: f64,
        seed: u64,
    ) -> Result<ShardedLocalRunner, ChainError> {
        ShardedLocalRunner::with_region_tiles(start, lambda, seed, DEFAULT_REGION_TILES)
    }

    /// Builds a runner over regions of `region_tiles × region_tiles` tiles.
    /// `region_tiles` is a *semantic* parameter — it changes the schedule,
    /// hence the trajectory — unlike the worker count, which never does.
    ///
    /// # Errors
    ///
    /// [`ChainError::InvalidLambda`] or [`ChainError::NotConnected`].
    pub fn with_region_tiles(
        start: &ParticleSystem,
        lambda: f64,
        seed: u64,
        region_tiles: u32,
    ) -> Result<ShardedLocalRunner, ChainError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ChainError::InvalidLambda(lambda));
        }
        if !start.is_connected() {
            return Err(ChainError::NotConnected);
        }
        let particles: Vec<Particle> = start
            .positions()
            .iter()
            .map(|&tail| Particle {
                tail,
                head: None,
                flag: false,
            })
            .collect();
        let mut occ = TileGrid::with_site_capacity(2 * particles.len());
        for (id, p) in particles.iter().enumerate() {
            occ.insert(p.tail, encode_slot(id, false));
        }
        let mut lambda_pow = [0.0; 11];
        for (i, slot) in lambda_pow.iter_mut().enumerate() {
            *slot = lambda.powi(i as i32 - 5);
        }
        let n = particles.len();
        Ok(ShardedLocalRunner {
            particles,
            occ,
            lambda,
            lambda_pow,
            seed,
            map: RegionMap::new(region_tiles),
            rounds: 0,
            activations: 0,
            moves_completed: 0,
            crashed: vec![false; n],
            live: n,
            probes: LocalProbes::default(),
        })
    }

    /// The bias parameter `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The region decomposition this runner schedules over.
    #[must_use]
    pub fn region_map(&self) -> RegionMap {
        self.map
    }

    /// Completed rounds (each: the four colors in order, every live
    /// particle activated exactly once — migrants excepted, see the module
    /// docs).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total particle activations processed.
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Completed moves (forward contractions).
    #[must_use]
    pub fn moves_completed(&self) -> u64 {
        self.moves_completed
    }

    /// Telemetry probes accumulated since construction (or restore).
    #[must_use]
    pub fn probes(&self) -> &LocalProbes {
        &self.probes
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// `true` if the runner has no particles (constructors forbid this).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Whether particle `id` is currently expanded.
    #[must_use]
    pub fn is_expanded(&self, id: usize) -> bool {
        self.particles[id].head.is_some()
    }

    /// Crashes particle `id`: it never activates again but keeps occupying
    /// its sites (frozen mid-expansion if expanded), exactly like the
    /// asynchronous runner.
    pub fn crash(&mut self, id: usize) {
        if !self.crashed[id] {
            self.crashed[id] = true;
            self.live -= 1;
        }
    }

    /// The configuration as defined by the paper: tails of all particles.
    #[must_use]
    pub fn tail_system(&self) -> ParticleSystem {
        ParticleSystem::new(self.particles.iter().map(|p| p.tail))
            .expect("tails are distinct by construction")
    }

    /// Runs `r` rounds with the **unsharded reference** implementation:
    /// one flat grid, one sequential pass in schedule order.
    pub fn run_rounds(&mut self, r: u64) {
        for _ in 0..r {
            let round = self.rounds;
            for color in 0..REGION_COLORS {
                // Membership is decided at color-step start (a migrant can
                // therefore activate twice in a round — or not at all —
                // identically in both implementations).
                let mut buckets: BTreeMap<RegionId, Vec<usize>> = BTreeMap::new();
                for (id, p) in self.particles.iter().enumerate() {
                    if self.crashed[id] {
                        continue;
                    }
                    let region = self.map.region_of(p.tail);
                    if RegionMap::color(region) == color {
                        buckets.entry(region).or_default().push(id);
                    }
                }
                for (region, ids) in &buckets {
                    let mut rng =
                        StdRng::seed_from_u64(region_stream_seed(self.seed, *region, round));
                    for &id in ids {
                        self.activations += 1;
                        let mut world = FlatWorld {
                            particles: &mut self.particles,
                            occ: &mut self.occ,
                        };
                        match activate_one(&mut world, id, &self.lambda_pow, &mut rng) {
                            Activation::Expanded { .. } => self.probes.expanded += 1,
                            Activation::ContractedForward { .. } => {
                                self.probes.contracted_forward += 1;
                                self.moves_completed += 1;
                            }
                            Activation::ContractedBack { .. } => self.probes.contracted_back += 1,
                            Activation::Idle { .. } => self.probes.idle += 1,
                            Activation::Crashed { .. } => unreachable!("crashed ids are skipped"),
                        }
                    }
                }
            }
            self.rounds += 1;
        }
    }

    /// Runs `r` rounds with the **sharded machinery**: region cells, halo
    /// exchange, and `executor` driving each color step's tasks. Results
    /// are byte-identical to [`ShardedLocalRunner::run_rounds`] for any
    /// executor honoring the [`StepExecutor`] contract, at any concurrency.
    pub fn run_rounds_with(&mut self, r: u64, executor: &impl StepExecutor) {
        if r == 0 {
            return;
        }
        let mut state = self.build_cells();
        let mut scratch: Vec<(u64, u32)> = Vec::new();
        for _ in 0..r {
            let round = self.rounds;
            for color in 0..REGION_COLORS {
                let active: Vec<RegionId> = state
                    .cells
                    .iter()
                    .filter(|(region, cell)| {
                        RegionMap::color(**region) == color
                            && cell.particles.iter().any(|&(id, _)| !self.crashed[id])
                    })
                    .map(|(region, _)| *region)
                    .collect();
                let mut tasks = Vec::with_capacity(active.len());
                for region in &active {
                    let cell = state.cells.remove(region).expect("active cell exists");
                    let halo: Vec<Arc<Vec<(TriPoint, u32)>>> = RegionMap::neighbors8(*region)
                        .iter()
                        .filter_map(|nk| state.rims.get(nk).cloned())
                        .collect();
                    let crashed: Vec<usize> = cell
                        .particles
                        .iter()
                        .map(|e| e.0)
                        .filter(|&id| self.crashed[id])
                        .collect();
                    tasks.push(ShardTask {
                        cell,
                        halo,
                        stream: region_stream_seed(self.seed, *region, round),
                        lambda_pow: self.lambda_pow,
                        crashed,
                        map: self.map,
                    });
                }
                let outs = executor.run_step(tasks);
                assert_eq!(outs.len(), active.len(), "executor dropped tasks");
                // Deterministic merge: outputs in task (= sorted region)
                // order, then migrants routed, then dirty rims refreshed.
                let mut dirty: Vec<RegionId> = Vec::new();
                for (region, out) in active.iter().zip(outs) {
                    debug_assert_eq!(*region, out.cell.region, "executor reordered outputs");
                    self.activations += out.activations;
                    self.moves_completed += out.moves;
                    self.probes.expanded += out.probes.expanded;
                    self.probes.contracted_forward += out.probes.contracted_forward;
                    self.probes.contracted_back += out.probes.contracted_back;
                    self.probes.idle += out.probes.idle;
                    if out.cell.particles.is_empty() {
                        state.rims.remove(region);
                    } else {
                        state.rims.insert(*region, Arc::new(out.rim));
                        state.cells.insert(*region, out.cell);
                    }
                    for (id, p) in out.emigrants {
                        let dest = self.map.region_of(p.tail);
                        debug_assert!(RegionMap::are_adjacent(*region, dest));
                        let cell = state
                            .cells
                            .entry(dest)
                            .or_insert_with(|| RegionCell::new(dest));
                        let at = cell
                            .particles
                            .binary_search_by_key(&id, |e| e.0)
                            .expect_err("particle cannot already live in dest");
                        cell.particles.insert(at, (id, p));
                        cell.grid.insert(p.tail, encode_slot(id, false));
                        if !dirty.contains(&dest) {
                            dirty.push(dest);
                        }
                    }
                }
                for dest in dirty {
                    let rim = state.cells[&dest].rim(&self.map, &mut scratch);
                    state.rims.insert(dest, Arc::new(rim));
                }
            }
            self.rounds += 1;
        }
        self.flatten(state);
    }

    /// Builds the sharded representation from the flat state.
    fn build_cells(&self) -> ShardState {
        let mut cells: BTreeMap<RegionId, RegionCell> = BTreeMap::new();
        for (id, p) in self.particles.iter().enumerate() {
            let region = self.map.region_of(p.tail);
            let cell = cells
                .entry(region)
                .or_insert_with(|| RegionCell::new(region));
            cell.particles.push((id, *p)); // ascending id by construction
            cell.grid.insert(p.tail, encode_slot(id, false));
            if let Some(h) = p.head {
                cell.grid.insert(h, encode_slot(id, true));
            }
        }
        let mut scratch = Vec::new();
        let rims = cells
            .iter()
            .map(|(region, cell)| (*region, Arc::new(cell.rim(&self.map, &mut scratch))))
            .collect();
        ShardState { cells, rims }
    }

    /// Writes the sharded representation back into the flat state.
    fn flatten(&mut self, state: ShardState) {
        self.occ.clear();
        for cell in state.cells.into_values() {
            for (id, p) in cell.particles {
                self.particles[id] = p;
                self.occ.insert(p.tail, encode_slot(id, false));
                if let Some(h) = p.head {
                    self.occ.insert(h, encode_slot(id, true));
                }
            }
        }
    }

    /// Serializes the simulator state as a compact text snapshot. The
    /// format carries no RNG state at all: streams are derived per
    /// `(seed, region, round)`, so `(seed, rounds)` is the complete
    /// randomness state — and no shard/worker count appears anywhere,
    /// which is what makes checkpoints portable across shard counts.
    #[must_use]
    pub fn snapshot(&self) -> String {
        use core::fmt::Write as _;
        let particles: Vec<String> = self
            .particles
            .iter()
            .map(|p| match p.head {
                Some(h) => format!(
                    "{},{},{},{},{}",
                    p.tail.x,
                    p.tail.y,
                    h.x,
                    h.y,
                    u8::from(p.flag)
                ),
                None => format!("{},{},{}", p.tail.x, p.tail.y, u8::from(p.flag)),
            })
            .collect();
        let mut s = String::from("sops-sharded-snapshot v1\n");
        let _ = writeln!(s, "lambda={}", snapshot::f64_to_hex(self.lambda));
        let _ = writeln!(s, "seed={}", self.seed);
        let _ = writeln!(s, "region_tiles={}", self.map.region_tiles());
        let _ = writeln!(s, "rounds={}", self.rounds);
        let _ = writeln!(s, "activations={}", self.activations);
        let _ = writeln!(s, "moves={}", self.moves_completed);
        let _ = writeln!(s, "crashed={}", snapshot::bools_to_string(&self.crashed));
        let _ = writeln!(s, "particles={}", particles.join(";"));
        s
    }

    /// Rebuilds a runner from a [`ShardedLocalRunner::snapshot`] text.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the text is malformed or describes an invalid
    /// state (overlapping sites, a head not adjacent to its tail, bad λ).
    pub fn restore(text: &str) -> Result<ShardedLocalRunner, SnapshotError> {
        let fields = snapshot::Fields::parse(text, "sops-sharded-snapshot v1")?;
        let bad = |field: &'static str, value: &str| SnapshotError::BadField {
            field,
            value: value.to_string(),
        };
        let lambda = fields.parse_f64_bits("lambda")?;
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(SnapshotError::Invalid(format!("bad lambda {lambda}")));
        }
        let raw_particles = fields.get("particles")?;
        let mut particles = Vec::new();
        for item in raw_particles.split(';').filter(|i| !i.is_empty()) {
            let nums: Vec<i32> = item
                .split(',')
                .map(|t| t.parse().map_err(|_| bad("particles", raw_particles)))
                .collect::<Result<_, _>>()?;
            let particle = match nums[..] {
                [x, y, flag] => Particle {
                    tail: TriPoint::new(x, y),
                    head: None,
                    flag: flag != 0,
                },
                [x, y, hx, hy, flag] => Particle {
                    tail: TriPoint::new(x, y),
                    head: Some(TriPoint::new(hx, hy)),
                    flag: flag != 0,
                },
                _ => return Err(bad("particles", raw_particles)),
            };
            if let Some(h) = particle.head {
                if !particle.tail.is_adjacent(h) {
                    return Err(SnapshotError::Invalid(format!(
                        "head {h} not adjacent to tail {}",
                        particle.tail
                    )));
                }
            }
            particles.push(particle);
        }
        if particles.is_empty() {
            return Err(SnapshotError::Invalid("no particles".into()));
        }
        let n = particles.len();
        let mut occ = TileGrid::with_site_capacity(2 * n);
        for (id, p) in particles.iter().enumerate() {
            if occ.insert(p.tail, encode_slot(id, false)).is_some() {
                return Err(SnapshotError::Invalid(format!(
                    "site {} occupied twice",
                    p.tail
                )));
            }
            if let Some(h) = p.head {
                if occ.insert(h, encode_slot(id, true)).is_some() {
                    return Err(SnapshotError::Invalid(format!("site {h} occupied twice")));
                }
            }
        }
        let crashed = snapshot::bools_from_string("crashed", fields.get("crashed")?, n)?;
        let live = crashed.iter().filter(|&&dead| !dead).count();
        let mut lambda_pow = [0.0; 11];
        for (i, slot) in lambda_pow.iter_mut().enumerate() {
            *slot = lambda.powi(i as i32 - 5);
        }
        Ok(ShardedLocalRunner {
            particles,
            occ,
            lambda,
            lambda_pow,
            seed: fields.parse_num("seed")?,
            map: RegionMap::new(fields.parse_num("region_tiles")?),
            rounds: fields.parse_num("rounds")?,
            activations: fields.parse_num("activations")?,
            moves_completed: fields.parse_num("moves")?,
            crashed,
            live,
            probes: LocalProbes::default(),
        })
    }

    /// Checks internal invariants (slot/particle agreement, tail
    /// distinctness, grid consistency). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails.
    pub fn assert_invariants(&self) {
        self.occ.assert_valid();
        let mut slots = 0usize;
        for (id, particle) in self.particles.iter().enumerate() {
            assert_eq!(
                self.occ.get(particle.tail),
                Some(encode_slot(id, false)),
                "tail slot mismatch at {}",
                particle.tail
            );
            slots += 1;
            if let Some(h) = particle.head {
                assert_eq!(
                    self.occ.get(h),
                    Some(encode_slot(id, true)),
                    "head slot mismatch at {h}"
                );
                slots += 1;
            }
        }
        assert_eq!(slots, self.occ.len(), "slot count mismatch");
        assert_eq!(
            self.live,
            self.crashed.iter().filter(|&&dead| !dead).count(),
            "live count mismatch"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sops_system::{metrics, shapes};

    fn runner(n: usize, lambda: f64, seed: u64) -> ShardedLocalRunner {
        let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
        ShardedLocalRunner::from_seed(&sys, lambda, seed).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let sys = ParticleSystem::connected(shapes::line(4)).unwrap();
        assert!(matches!(
            ShardedLocalRunner::from_seed(&sys, -1.0, 0),
            Err(ChainError::InvalidLambda(_))
        ));
        let disconnected = ParticleSystem::new([TriPoint::new(0, 0), TriPoint::new(9, 9)]).unwrap();
        assert!(matches!(
            ShardedLocalRunner::from_seed(&disconnected, 2.0, 0),
            Err(ChainError::NotConnected)
        ));
    }

    #[test]
    fn compression_happens_under_the_synchronous_schedule() {
        let mut r = runner(15, 5.0, 7);
        r.run_rounds(1_500);
        let tails = r.tail_system();
        assert!(tails.is_connected());
        let p = tails.perimeter();
        assert!(
            p < metrics::pmax(15) * 2 / 3,
            "synchronous schedule should compress: p = {p}"
        );
        assert!(r.moves_completed() > 0);
        r.assert_invariants();
    }

    #[test]
    fn reference_and_serial_sharded_agree_byte_for_byte() {
        for (n, lambda, seed, tiles) in [(10, 4.0, 3, 1), (17, 3.0, 11, 2), (24, 5.0, 5, 1)] {
            let sys = ParticleSystem::connected(shapes::line(n)).unwrap();
            let mut a = ShardedLocalRunner::with_region_tiles(&sys, lambda, seed, tiles).unwrap();
            let mut b = ShardedLocalRunner::with_region_tiles(&sys, lambda, seed, tiles).unwrap();
            a.run_rounds(120);
            b.run_rounds_with(120, &SerialExecutor);
            assert_eq!(a.snapshot(), b.snapshot(), "n={n} λ={lambda} seed={seed}");
            assert_eq!(a.probes(), b.probes());
            b.assert_invariants();
        }
    }

    #[test]
    fn interleaved_chunks_match_one_shot_runs() {
        let mut a = runner(12, 4.0, 21);
        let mut b = runner(12, 4.0, 21);
        a.run_rounds(90);
        // Mixing the two implementations across chunks must not matter.
        b.run_rounds_with(30, &SerialExecutor);
        b.run_rounds(25);
        b.run_rounds_with(35, &SerialExecutor);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn crashed_particles_freeze_but_keep_blocking() {
        let mut r = runner(8, 3.0, 9);
        let frozen = r.tail_system().position(2);
        r.crash(2);
        r.run_rounds(300);
        assert_eq!(r.tail_system().position(2), frozen);
        assert!(r.activations() > 0);
        let mut s = runner(8, 3.0, 9);
        s.crash(2);
        s.run_rounds_with(300, &SerialExecutor);
        assert_eq!(r.snapshot(), s.snapshot());
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let mut a = runner(11, 4.0, 31);
        a.run_rounds(73);
        let snap = a.snapshot();
        let mut b = ShardedLocalRunner::restore(&snap).unwrap();
        b.assert_invariants();
        assert_eq!(a.rounds(), b.rounds());
        a.run_rounds(60);
        b.run_rounds_with(60, &SerialExecutor);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn restore_rejects_bad_states() {
        let a = runner(4, 2.0, 1);
        let snap = a.snapshot();
        let corrupt = snap.replace("sops-sharded-snapshot v1", "sops-local-snapshot v1");
        assert!(ShardedLocalRunner::restore(&corrupt).is_err());
        let overlap = snap.replace("particles=0,0,0;", "particles=1,0,0;");
        assert!(ShardedLocalRunner::restore(&overlap).is_err());
    }

    #[test]
    fn stream_seeds_are_pure_and_distinct() {
        let s = region_stream_seed(7, (3, -2), 10);
        assert_eq!(s, region_stream_seed(7, (3, -2), 10));
        assert_ne!(s, region_stream_seed(7, (3, -2), 11));
        assert_ne!(s, region_stream_seed(7, (-2, 3), 10));
        assert_ne!(s, region_stream_seed(8, (3, -2), 10));
    }

    #[test]
    fn rounds_tick_even_when_everyone_crashed() {
        let mut r = runner(3, 2.0, 13);
        for id in 0..3 {
            r.crash(id);
        }
        r.run_rounds(5);
        assert_eq!(r.rounds(), 5);
        assert_eq!(r.activations(), 0);
        let mut s = runner(3, 2.0, 13);
        for id in 0..3 {
            s.crash(id);
        }
        s.run_rounds_with(5, &SerialExecutor);
        assert_eq!(r.snapshot(), s.snapshot());
    }
}
