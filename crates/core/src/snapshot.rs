//! Compact text snapshots of simulation state (checkpoint/resume support).
//!
//! Long sweeps — millions of particles × millions of steps × many (n, λ)
//! cells — need to survive interruption. Both simulators therefore expose a
//! `snapshot` / `restore` pair over a line-oriented `key=value` text format:
//!
//! * [`crate::chain::CompressionChain::snapshot`] captures the particle
//!   positions (in id order), the bias λ, the step and outcome counters, the
//!   crash set and the exact RNG state (ChaCha key + block counter + word
//!   index — three words instead of the whole output buffer).
//! * [`crate::local::LocalRunner::snapshot`] additionally captures the
//!   expanded heads, per-particle flags, the Poisson future-event list and
//!   the asynchronous round bookkeeping.
//!
//! Restoring a snapshot and continuing produces the **bitwise identical**
//! trajectory of the uninterrupted run: floats round-trip through their IEEE
//! bit patterns (hex), never through decimal, and the RNG keystream resumes
//! mid-block. This is what lets `sops-engine` checkpoint a sweep at any
//! point and resume it — on any number of threads — to the same results.

use core::fmt;
use std::collections::BTreeMap;

use rand::rngs::StdRng;
use sops_lattice::TriPoint;
use sops_system::ParticleSystem;

use crate::hamiltonian::Hamiltonian;

/// Errors from parsing a snapshot text.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The first line is not the expected format header.
    WrongHeader {
        /// The header the parser was looking for.
        expected: &'static str,
    },
    /// A required `key=value` line is absent.
    MissingField(&'static str),
    /// A field value failed to parse.
    BadField {
        /// Name of the offending field.
        field: &'static str,
        /// The unparseable value.
        value: String,
    },
    /// The fields parsed but describe an invalid state (e.g. a disconnected
    /// configuration or out-of-range particle id).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::WrongHeader { expected } => {
                write!(f, "snapshot header mismatch: expected {expected:?}")
            }
            SnapshotError::MissingField(name) => write!(f, "snapshot field {name:?} is missing"),
            SnapshotError::BadField { field, value } => {
                write!(
                    f,
                    "snapshot field {field:?} has unparseable value {value:?}"
                )
            }
            SnapshotError::Invalid(why) => write!(f, "snapshot describes an invalid state: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encodes an `f64` as its IEEE-754 bit pattern in hex (exact round trip).
#[must_use]
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes an [`f64_to_hex`] value.
///
/// # Errors
///
/// [`SnapshotError::BadField`] when `value` is not 16 hex digits.
pub fn f64_from_hex(field: &'static str, value: &str) -> Result<f64, SnapshotError> {
    u64::from_str_radix(value, 16)
        .map(f64::from_bits)
        .map_err(|_| SnapshotError::BadField {
            field,
            value: value.to_string(),
        })
}

/// Serializes a sample list as comma-joined [`f64_to_hex`] values.
#[must_use]
pub fn f64s_to_string(values: &[f64]) -> String {
    values
        .iter()
        .map(|&v| f64_to_hex(v))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses an [`f64s_to_string`] value (empty string ⇒ empty list).
///
/// # Errors
///
/// [`SnapshotError::BadField`] on any malformed element.
pub fn f64s_from_string(field: &'static str, raw: &str) -> Result<Vec<f64>, SnapshotError> {
    raw.split(',')
        .filter(|item| !item.is_empty())
        .map(|item| f64_from_hex(field, item))
        .collect()
}

/// Serializes an optional count as the number or the sentinel `none`.
#[must_use]
pub fn opt_u64_to_string(value: Option<u64>) -> String {
    value.map_or_else(|| "none".into(), |v| v.to_string())
}

/// Parses an [`opt_u64_to_string`] value.
///
/// # Errors
///
/// [`SnapshotError::BadField`] when neither `none` nor a `u64`.
pub fn opt_u64_from_string(field: &'static str, raw: &str) -> Result<Option<u64>, SnapshotError> {
    if raw == "none" {
        return Ok(None);
    }
    raw.parse().map(Some).map_err(|_| SnapshotError::BadField {
        field,
        value: raw.to_string(),
    })
}

/// Serializes an [`StdRng`] state triple as `key words / counter / index`.
#[must_use]
pub fn rng_to_string(rng: &StdRng) -> String {
    let (key, counter, index) = rng.state();
    let words: Vec<String> = key.iter().map(|w| format!("{w:08x}")).collect();
    format!("{}/{counter}/{index}", words.join(","))
}

/// Parses an [`rng_to_string`] value back into a generator.
///
/// # Errors
///
/// [`SnapshotError::BadField`] on any malformed component.
pub fn rng_from_string(field: &'static str, value: &str) -> Result<StdRng, SnapshotError> {
    let bad = || SnapshotError::BadField {
        field,
        value: value.to_string(),
    };
    let mut parts = value.split('/');
    let key_part = parts.next().ok_or_else(bad)?;
    let counter: u64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let index: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    let mut key = [0u32; 8];
    let mut words = key_part.split(',');
    for slot in &mut key {
        *slot = words
            .next()
            .and_then(|w| u32::from_str_radix(w, 16).ok())
            .ok_or_else(bad)?;
    }
    if words.next().is_some() {
        return Err(bad());
    }
    Ok(StdRng::from_state(key, counter, index))
}

/// Serializes lattice points as `x y` pairs joined with `;`.
#[must_use]
pub fn points_to_string(points: impl IntoIterator<Item = TriPoint>) -> String {
    points
        .into_iter()
        .map(|p| format!("{} {}", p.x, p.y))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses a [`points_to_string`] value.
///
/// # Errors
///
/// [`SnapshotError::BadField`] on malformed coordinates.
pub fn points_from_string(
    field: &'static str,
    value: &str,
) -> Result<Vec<TriPoint>, SnapshotError> {
    let bad = || SnapshotError::BadField {
        field,
        value: value.to_string(),
    };
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(';')
        .map(|pair| {
            let (x, y) = pair.split_once(' ').ok_or_else(bad)?;
            Ok(TriPoint::new(
                x.parse().map_err(|_| bad())?,
                y.parse().map_err(|_| bad())?,
            ))
        })
        .collect()
}

/// Serializes per-particle orientations as a comma-joined list.
#[must_use]
pub fn u8s_to_string(values: &[u8]) -> String {
    values
        .iter()
        .map(u8::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Attaches the optional `orientations` field of a snapshot to a restored
/// configuration (absent field ⇒ configuration unchanged).
///
/// # Errors
///
/// [`SnapshotError`] on malformed values or a length mismatch.
pub fn attach_orientations(
    sys: ParticleSystem,
    fields: &Fields<'_>,
) -> Result<ParticleSystem, SnapshotError> {
    match fields.parse_list::<u8>("orientations") {
        Ok(orientations) => sys
            .with_orientations(orientations)
            .map_err(|e| SnapshotError::Invalid(e.to_string())),
        Err(SnapshotError::MissingField(_)) => Ok(sys),
        Err(e) => Err(e),
    }
}

/// Parses the optional `hamiltonian` field of a snapshot (absent ⇒ the
/// default `"edges"`) into an instance of `H`.
///
/// # Errors
///
/// [`SnapshotError::Invalid`] when the recorded name does not describe `H`
/// — restoring a snapshot under the wrong Hamiltonian type is an error, not
/// a reinterpretation.
pub fn hamiltonian_from_fields<H: Hamiltonian>(fields: &Fields<'_>) -> Result<H, SnapshotError> {
    let name = match fields.get("hamiltonian") {
        Ok(name) => name,
        Err(SnapshotError::MissingField(_)) => "edges",
        Err(e) => return Err(e),
    };
    H::parse(name).ok_or_else(|| {
        SnapshotError::Invalid(format!(
            "snapshot hamiltonian {name:?} does not match the restore type"
        ))
    })
}

/// Serializes a boolean-per-id vector as a `01…` string.
#[must_use]
pub fn bools_to_string(bools: &[bool]) -> String {
    bools.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a [`bools_to_string`] value, checking the expected length.
///
/// # Errors
///
/// [`SnapshotError::BadField`] on a wrong length or a non-`0`/`1` digit.
pub fn bools_from_string(
    field: &'static str,
    value: &str,
    expected_len: usize,
) -> Result<Vec<bool>, SnapshotError> {
    let bad = || SnapshotError::BadField {
        field,
        value: value.to_string(),
    };
    if value.len() != expected_len {
        return Err(bad());
    }
    value
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => Err(bad()),
        })
        .collect()
}

/// A parsed snapshot body: the header line followed by `key=value` lines.
///
/// Blank lines are ignored; unknown keys are preserved (forward
/// compatibility for additive format changes).
#[derive(Clone, Debug)]
pub struct Fields<'a> {
    map: BTreeMap<&'a str, &'a str>,
}

impl<'a> Fields<'a> {
    /// Parses `text`, requiring `header` as the first non-blank line.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::WrongHeader`] when the header does not match.
    pub fn parse(text: &'a str, header: &'static str) -> Result<Fields<'a>, SnapshotError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        if lines.next().map(str::trim) != Some(header) {
            return Err(SnapshotError::WrongHeader { expected: header });
        }
        let mut map = BTreeMap::new();
        for line in lines {
            if let Some((key, value)) = line.split_once('=') {
                map.insert(key.trim(), value);
            }
        }
        Ok(Fields { map })
    }

    /// The raw value of `key`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingField`] when absent.
    pub fn get(&self, key: &'static str) -> Result<&'a str, SnapshotError> {
        self.map
            .get(key)
            .copied()
            .ok_or(SnapshotError::MissingField(key))
    }

    /// A field parsed with `FromStr`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingField`] or [`SnapshotError::BadField`].
    pub fn parse_num<T: core::str::FromStr>(&self, key: &'static str) -> Result<T, SnapshotError> {
        let raw = self.get(key)?;
        raw.parse().map_err(|_| SnapshotError::BadField {
            field: key,
            value: raw.to_string(),
        })
    }

    /// An `f64` field stored as hex bits.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingField`] or [`SnapshotError::BadField`].
    pub fn parse_f64_bits(&self, key: &'static str) -> Result<f64, SnapshotError> {
        f64_from_hex(key, self.get(key)?)
    }

    /// A comma-separated list of integers (empty value ⇒ empty list).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingField`] or [`SnapshotError::BadField`].
    pub fn parse_list<T: core::str::FromStr>(
        &self,
        key: &'static str,
    ) -> Result<Vec<T>, SnapshotError> {
        let raw = self.get(key)?;
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|item| {
                item.parse().map_err(|_| SnapshotError::BadField {
                    field: key,
                    value: raw.to_string(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn f64_hex_round_trips_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, -1e300] {
            let back = f64_from_hex("x", &f64_to_hex(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn rng_string_round_trips_mid_block() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u32 = rng.gen_range(0..7); // desynchronize from a block edge
        let mut resumed = rng_from_string("rng", &rng_to_string(&rng)).unwrap();
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
    }

    #[test]
    fn points_round_trip_including_negatives() {
        let pts = vec![
            TriPoint::new(-3, 7),
            TriPoint::new(0, 0),
            TriPoint::new(5, -1),
        ];
        let s = points_to_string(pts.clone());
        assert_eq!(points_from_string("p", &s).unwrap(), pts);
        assert_eq!(points_from_string("p", "").unwrap(), Vec::new());
    }

    #[test]
    fn bools_round_trip_and_check_length() {
        let bs = vec![true, false, true];
        let s = bools_to_string(&bs);
        assert_eq!(bools_from_string("b", &s, 3).unwrap(), bs);
        assert!(bools_from_string("b", &s, 4).is_err());
        assert!(bools_from_string("b", "01x", 3).is_err());
    }

    #[test]
    fn list_and_option_helpers_round_trip() {
        let values = [1.5, -0.25, 0.1 + 0.2];
        let back = f64s_from_string("s", &f64s_to_string(&values)).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(f64s_from_string("s", "").unwrap(), Vec::<f64>::new());
        assert_eq!(opt_u64_from_string("h", "none").unwrap(), None);
        assert_eq!(opt_u64_from_string("h", "42").unwrap(), Some(42));
        assert_eq!(opt_u64_to_string(Some(7)), "7");
        assert_eq!(opt_u64_to_string(None), "none");
        assert!(opt_u64_from_string("h", "x").is_err());
    }

    #[test]
    fn fields_parser_reports_errors() {
        let err = Fields::parse("wrong header\nk=v", "right header").unwrap_err();
        assert!(matches!(err, SnapshotError::WrongHeader { .. }));
        let fields = Fields::parse("h v1\n\na=3\nlist=1,2,3\n", "h v1").unwrap();
        assert_eq!(fields.parse_num::<u64>("a").unwrap(), 3);
        assert_eq!(fields.parse_list::<usize>("list").unwrap(), vec![1, 2, 3]);
        assert_eq!(fields.get("zzz"), Err(SnapshotError::MissingField("zzz")));
    }
}
