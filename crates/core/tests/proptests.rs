//! Property-based tests for the Markov chain and the local algorithm.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sops_core::chain::{CompressionChain, StepOutcome};
use sops_core::kmc::KmcChain;
use sops_core::local::LocalRunner;
use sops_lattice::Direction;
use sops_system::{metrics, shapes, ParticleSystem};

fn arb_start() -> impl Strategy<Value = ParticleSystem> {
    (3usize..25, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::connected(shapes::random_connected(n, &mut rng)).unwrap()
    })
}

/// The pre-Hamiltonian chain `M`, reimplemented from the paper as a test
/// oracle: the hard-coded `λ^(e′−e)` Metropolis filter over the validity's
/// neighbor counts, consuming randomness in exactly the original order
/// (particle, direction, then `q` only when the threshold is below 1). The
/// generic chain with the default [`sops_core::EdgeCount`] Hamiltonian must
/// reproduce it bit for bit.
struct LegacyChain {
    sys: ParticleSystem,
    /// `lambda_pow[i]` = `λ^(i − 5)`, the original 11-entry table.
    lambda_pow: [f64; 11],
    rng: StdRng,
    crashed: Vec<bool>,
}

impl LegacyChain {
    fn new(sys: ParticleSystem, lambda: f64, seed: u64) -> LegacyChain {
        let mut lambda_pow = [0.0; 11];
        for (i, slot) in lambda_pow.iter_mut().enumerate() {
            *slot = lambda.powi(i as i32 - 5);
        }
        LegacyChain {
            crashed: vec![false; sys.len()],
            sys,
            lambda_pow,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One legacy step, encoded as a comparable outcome string.
    fn step(&mut self) -> String {
        let n = self.sys.len();
        let id = self.rng.gen_range(0..n);
        let dir = Direction::ALL[self.rng.gen_range(0..6usize)];
        if self.crashed[id] {
            return "crashed".into();
        }
        let from = self.sys.position(id);
        if self.sys.is_occupied(from + dir) {
            return "occupied".into();
        }
        let validity = self.sys.check_move(from, dir);
        if validity.five_neighbor_blocked() {
            return "five".into();
        }
        if !(validity.property1 || validity.property2) {
            return "prop".into();
        }
        let delta = validity.edge_delta();
        let threshold = self.lambda_pow[(delta + 5) as usize];
        if threshold < 1.0 {
            let q: f64 = self.rng.gen();
            if q >= threshold {
                return "metropolis".into();
            }
        }
        self.sys.move_particle(id, dir).unwrap();
        format!("moved {id} {dir:?} {delta}")
    }
}

fn outcome_string(outcome: StepOutcome) -> String {
    match outcome {
        StepOutcome::Moved { id, dir, delta } => format!("moved {id} {dir:?} {delta}"),
        StepOutcome::TargetOccupied => "occupied".into(),
        StepOutcome::CrashedParticle => "crashed".into(),
        StepOutcome::FiveNeighborBlocked => "five".into(),
        StepOutcome::PropertyViolated => "prop".into(),
        StepOutcome::MetropolisRejected => "metropolis".into(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential oracle for the Hamiltonian refactor: the generic chain
    /// with the default edge-count Hamiltonian reproduces the legacy
    /// hard-coded chain **bit for bit** — identical outcome per step
    /// (including which particle/direction and the energy delta), identical
    /// RNG consumption (a single divergence would desynchronize every later
    /// step), identical final configuration — across random starts, biases
    /// on both sides of 1, and crash injection. Snapshot round-trips
    /// mid-stream must not perturb the stream either.
    #[test]
    fn default_hamiltonian_is_bit_identical_to_legacy_chain(
        start in arb_start(),
        lambda_pct in 30u32..700,
        seed in any::<u64>(),
        crash_one in any::<bool>(),
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut legacy = LegacyChain::new(start.clone(), lambda, seed);
        let mut chain = CompressionChain::from_seed(start, lambda, seed).unwrap();
        if crash_one {
            legacy.crashed[0] = true;
            chain.crash(0);
        }
        for step in 0..1_500u32 {
            if step == 700 {
                // Snapshot round-trip mid-stream: byte-stable format, and
                // the restored chain continues the identical stream.
                let snap = chain.snapshot();
                prop_assert!(!snap.contains("hamiltonian="), "default snapshots carry no hamiltonian line");
                prop_assert!(!snap.contains("orientations="), "default snapshots carry no orientations line");
                chain = CompressionChain::restore(&snap).unwrap();
            }
            let expected = legacy.step();
            let got = outcome_string(chain.step());
            prop_assert_eq!(expected, got, "diverged at step {}", step);
        }
        prop_assert_eq!(legacy.sys.positions(), chain.system().positions());
        prop_assert_eq!(legacy.sys.edge_count(), chain.system().edge_count());
    }

    /// The alignment Hamiltonian's local delta agrees with a global
    /// recount of aligned pairs across random oriented configurations —
    /// the correctness anchor for the KMC locality contract.
    #[test]
    fn alignment_delta_matches_global_recount_on_random_starts(
        start in arb_start(),
        oseed in any::<u64>(),
        q in 2u8..6,
    ) {
        use sops_core::hamiltonian::{Hamiltonian, MoveContext};
        let ham = sops_core::Alignment::new(q);
        let sys = start.with_random_orientations(q, oseed);
        let before = metrics::aligned_pairs(&sys);
        for id in 0..sys.len() {
            for dir in Direction::ALL {
                let from = sys.position(id);
                let validity = sys.check_move(from, dir);
                if !validity.is_structurally_valid() {
                    continue;
                }
                let ctx = MoveContext { sys: &sys, id, from, dir, validity };
                let local = ham.delta(&ctx);
                let mut moved = sys.clone();
                moved.move_particle(id, dir).unwrap();
                prop_assert_eq!(
                    local,
                    metrics::aligned_pairs(&moved) as i32 - before as i32
                );
            }
        }
    }

    /// The alignment KMC sampler's incrementally maintained mass table
    /// never drifts from a from-scratch recount, including under crashes —
    /// the same exactness guarantee the edge-count tower has.
    #[test]
    fn alignment_kmc_masses_match_recount(
        start in arb_start(),
        seed in any::<u64>(),
        lambda_pct in 50u32..500,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let sys = start.with_random_orientations(3, seed ^ 0xa11);
        let mut kmc = KmcChain::from_seed_with(sys, lambda, seed, sops_core::Alignment::new(3)).unwrap();
        kmc.run(2_000);
        prop_assert_eq!(kmc.mass_histogram(), kmc.recomputed_mass_histogram());
        if kmc.system().len() > 1 {
            kmc.crash(1);
            kmc.run(1_000);
            prop_assert_eq!(kmc.mass_histogram(), kmc.recomputed_mass_histogram());
        }
    }

    /// Whatever happens, the chain's bookkeeping stays coherent: edge count
    /// matches a recount, outcome totals match the step count, positions and
    /// occupancy agree.
    #[test]
    fn chain_bookkeeping_is_coherent(start in arb_start(), lambda_pct in 30u32..700, seed in any::<u64>()) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut chain = CompressionChain::from_seed(start, lambda, seed).unwrap();
        chain.run(2_000);
        prop_assert_eq!(chain.counts().total(), chain.steps());
        chain.system().assert_invariants();
    }

    /// Accepted moves always had a structurally valid shape: replaying the
    /// inverse move right after must also be structurally valid (Lemma 3.9
    /// on hole-free states).
    #[test]
    fn accepted_moves_are_reversible(start in arb_start(), seed in any::<u64>()) {
        prop_assume!(start.hole_count() == 0);
        let mut chain = CompressionChain::from_seed(start, 2.0, seed).unwrap();
        for _ in 0..500 {
            if let StepOutcome::Moved { id, dir, .. } = chain.step() {
                let back = chain
                    .system()
                    .check_move(chain.system().position(id), dir.opposite());
                prop_assert!(back.is_structurally_valid());
            }
        }
    }

    /// λ = 1 accepts every structurally valid move (the Metropolis filter
    /// never rejects), so no step outcome is MetropolisRejected.
    #[test]
    fn lambda_one_never_metropolis_rejects(start in arb_start(), seed in any::<u64>()) {
        let mut chain = CompressionChain::from_seed(start, 1.0, seed).unwrap();
        chain.run(2_000);
        prop_assert_eq!(chain.counts().metropolis, 0);
    }

    /// Large λ rejects at least as often via Metropolis as small λ on
    /// the same trajectory length from a line (biased chains resist
    /// perimeter-increasing moves).
    #[test]
    fn perimeter_never_below_pmin(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut chain = CompressionChain::from_seed(start, 5.0, seed).unwrap();
        chain.run(5_000);
        let p = chain.perimeter();
        prop_assert!(p >= metrics::pmin(n));
        if chain.is_hole_free() {
            prop_assert!(p <= metrics::pmax(n));
        }
    }

    /// The local runner's tail configuration always stays connected and its
    /// slot bookkeeping coherent, from any start and bias.
    #[test]
    fn local_runner_invariants(start in arb_start(), lambda_pct in 50u32..600, seed in any::<u64>()) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut runner = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        runner.run_activations(3_000);
        runner.assert_invariants();
        prop_assert!(runner.tail_system().is_connected());
        // The number of expanded particles is bounded by n.
        let expanded = (0..runner.len()).filter(|&i| runner.is_expanded(i)).count();
        prop_assert!(expanded <= runner.len());
    }

    /// Chain and local runner both conserve the particle count and anonymous
    /// multiset semantics: n never changes.
    #[test]
    fn particle_count_is_conserved(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut chain = CompressionChain::from_seed(start.clone(), 3.0, seed).unwrap();
        chain.run(1_000);
        prop_assert_eq!(chain.system().len(), n);
        let mut runner = LocalRunner::from_seed(&start, 3.0, seed).unwrap();
        runner.run_activations(1_000);
        prop_assert_eq!(runner.tail_system().len(), n);
    }

    /// Checkpointing is invisible: snapshotting the chain at an arbitrary
    /// step, restoring, and continuing produces the identical trajectory
    /// (outcome counts AND exact particle positions) to an uninterrupted
    /// run from the same seed.
    #[test]
    fn chain_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..3000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = CompressionChain::from_seed(start.clone(), lambda, seed).unwrap();
        let mut interrupted = CompressionChain::from_seed(start, lambda, seed).unwrap();
        interrupted.run(split);
        let mut resumed: CompressionChain = CompressionChain::restore(&interrupted.snapshot()).unwrap();
        full.run(split + 1_500);
        resumed.run(1_500);
        prop_assert_eq!(full.steps(), resumed.steps());
        prop_assert_eq!(full.counts(), resumed.counts());
        prop_assert_eq!(full.system().positions(), resumed.system().positions());
    }

    /// The rejection-free sampler's incrementally maintained acceptance
    /// masses exactly equal a from-scratch recomputation after arbitrary
    /// accepted-move sequences — including crash injections partway through.
    /// Both sides are integral per-class counts, so equality is exact, and
    /// the total mass S is a deterministic fold of the histogram.
    #[test]
    fn kmc_incremental_masses_match_recount(
        start in arb_start(),
        lambda_pct in 30u32..700,
        seed in any::<u64>(),
        crash_at in 0u64..2000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let n = start.len();
        let mut kmc = KmcChain::from_seed(start, lambda, seed).unwrap();
        kmc.run(crash_at);
        kmc.crash(seed as usize % n);
        kmc.run(5_000);
        prop_assert_eq!(kmc.mass_histogram(), kmc.recomputed_mass_histogram());
        kmc.assert_invariants();
        // The histogram fold is the only path to S, so S is exact too.
        let weights: f64 = kmc
            .mass_histogram()
            .iter()
            .enumerate()
            .map(|(c, &count)| count as f64 * lambda.powi(c as i32 - 5).min(1.0))
            .sum();
        prop_assert!((kmc.total_mass() - weights).abs() < 1e-12 * weights.max(1.0));
    }

    /// KMC checkpointing is invisible: snapshotting at an arbitrary step,
    /// restoring (which rebuilds the mass table from the configuration),
    /// and continuing produces the identical trajectory to an uninterrupted
    /// run — the canonical sorted-bucket form makes the rebuilt table
    /// sample identically.
    #[test]
    fn kmc_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..3000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = KmcChain::from_seed(start.clone(), lambda, seed).unwrap();
        let mut interrupted = KmcChain::from_seed(start, lambda, seed).unwrap();
        interrupted.run(split);
        let mut resumed: KmcChain = KmcChain::restore(&interrupted.snapshot()).unwrap();
        full.run(split + 1_500);
        resumed.run(1_500);
        prop_assert_eq!(full.steps(), resumed.steps());
        prop_assert_eq!(full.counts(), resumed.counts());
        prop_assert_eq!(full.system().positions(), resumed.system().positions());
    }

    /// Every move the KMC sampler executes is structurally valid under the
    /// paper's conditions: its mass table can only hold pairs passing the
    /// five-neighbor rule and Properties 1/2, so the configuration obeys the
    /// same invariants as the naive chain's (connectivity per Lemma 3.1).
    #[test]
    fn kmc_preserves_chain_invariants(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut kmc = KmcChain::from_seed(start, 3.0, seed).unwrap();
        kmc.set_validation(true);
        kmc.run(10_000);
        prop_assert!(kmc.system().is_connected());
        prop_assert_eq!(kmc.system().len(), n);
        kmc.system().assert_invariants();
        let p = kmc.perimeter();
        prop_assert!(p >= metrics::pmin(n));
    }

    /// The same for the local runner: snapshot → restore → continue equals
    /// an uninterrupted run, down to the simulated clock's exact bits and
    /// the configuration's canonical form.
    #[test]
    fn local_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..2000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        let mut interrupted = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        interrupted.run_activations(split);
        let mut resumed = LocalRunner::restore(&interrupted.snapshot()).unwrap();
        resumed.assert_invariants();
        full.run_activations(split + 1_000);
        resumed.run_activations(1_000);
        prop_assert_eq!(full.activations(), resumed.activations());
        prop_assert_eq!(full.moves_completed(), resumed.moves_completed());
        prop_assert_eq!(full.rounds(), resumed.rounds());
        prop_assert!(full.time().to_bits() == resumed.time().to_bits());
        prop_assert_eq!(
            full.tail_system().canonical_key(),
            resumed.tail_system().canonical_key()
        );
    }
}
