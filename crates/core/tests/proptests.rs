//! Property-based tests for the Markov chain and the local algorithm.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sops_core::chain::{CompressionChain, StepOutcome};
use sops_core::kmc::KmcChain;
use sops_core::local::LocalRunner;
use sops_system::{metrics, shapes, ParticleSystem};

fn arb_start() -> impl Strategy<Value = ParticleSystem> {
    (3usize..25, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        ParticleSystem::connected(shapes::random_connected(n, &mut rng)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever happens, the chain's bookkeeping stays coherent: edge count
    /// matches a recount, outcome totals match the step count, positions and
    /// occupancy agree.
    #[test]
    fn chain_bookkeeping_is_coherent(start in arb_start(), lambda_pct in 30u32..700, seed in any::<u64>()) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut chain = CompressionChain::from_seed(start, lambda, seed).unwrap();
        chain.run(2_000);
        prop_assert_eq!(chain.counts().total(), chain.steps());
        chain.system().assert_invariants();
    }

    /// Accepted moves always had a structurally valid shape: replaying the
    /// inverse move right after must also be structurally valid (Lemma 3.9
    /// on hole-free states).
    #[test]
    fn accepted_moves_are_reversible(start in arb_start(), seed in any::<u64>()) {
        prop_assume!(start.hole_count() == 0);
        let mut chain = CompressionChain::from_seed(start, 2.0, seed).unwrap();
        for _ in 0..500 {
            if let StepOutcome::Moved { id, dir, .. } = chain.step() {
                let back = chain
                    .system()
                    .check_move(chain.system().position(id), dir.opposite());
                prop_assert!(back.is_structurally_valid());
            }
        }
    }

    /// λ = 1 accepts every structurally valid move (the Metropolis filter
    /// never rejects), so no step outcome is MetropolisRejected.
    #[test]
    fn lambda_one_never_metropolis_rejects(start in arb_start(), seed in any::<u64>()) {
        let mut chain = CompressionChain::from_seed(start, 1.0, seed).unwrap();
        chain.run(2_000);
        prop_assert_eq!(chain.counts().metropolis, 0);
    }

    /// Large λ rejects at least as often via Metropolis as small λ on
    /// the same trajectory length from a line (biased chains resist
    /// perimeter-increasing moves).
    #[test]
    fn perimeter_never_below_pmin(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut chain = CompressionChain::from_seed(start, 5.0, seed).unwrap();
        chain.run(5_000);
        let p = chain.perimeter();
        prop_assert!(p >= metrics::pmin(n));
        if chain.is_hole_free() {
            prop_assert!(p <= metrics::pmax(n));
        }
    }

    /// The local runner's tail configuration always stays connected and its
    /// slot bookkeeping coherent, from any start and bias.
    #[test]
    fn local_runner_invariants(start in arb_start(), lambda_pct in 50u32..600, seed in any::<u64>()) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut runner = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        runner.run_activations(3_000);
        runner.assert_invariants();
        prop_assert!(runner.tail_system().is_connected());
        // The number of expanded particles is bounded by n.
        let expanded = (0..runner.len()).filter(|&i| runner.is_expanded(i)).count();
        prop_assert!(expanded <= runner.len());
    }

    /// Chain and local runner both conserve the particle count and anonymous
    /// multiset semantics: n never changes.
    #[test]
    fn particle_count_is_conserved(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut chain = CompressionChain::from_seed(start.clone(), 3.0, seed).unwrap();
        chain.run(1_000);
        prop_assert_eq!(chain.system().len(), n);
        let mut runner = LocalRunner::from_seed(&start, 3.0, seed).unwrap();
        runner.run_activations(1_000);
        prop_assert_eq!(runner.tail_system().len(), n);
    }

    /// Checkpointing is invisible: snapshotting the chain at an arbitrary
    /// step, restoring, and continuing produces the identical trajectory
    /// (outcome counts AND exact particle positions) to an uninterrupted
    /// run from the same seed.
    #[test]
    fn chain_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..3000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = CompressionChain::from_seed(start.clone(), lambda, seed).unwrap();
        let mut interrupted = CompressionChain::from_seed(start, lambda, seed).unwrap();
        interrupted.run(split);
        let mut resumed = CompressionChain::restore(&interrupted.snapshot()).unwrap();
        full.run(split + 1_500);
        resumed.run(1_500);
        prop_assert_eq!(full.steps(), resumed.steps());
        prop_assert_eq!(full.counts(), resumed.counts());
        prop_assert_eq!(full.system().positions(), resumed.system().positions());
    }

    /// The rejection-free sampler's incrementally maintained acceptance
    /// masses exactly equal a from-scratch recomputation after arbitrary
    /// accepted-move sequences — including crash injections partway through.
    /// Both sides are integral per-class counts, so equality is exact, and
    /// the total mass S is a deterministic fold of the histogram.
    #[test]
    fn kmc_incremental_masses_match_recount(
        start in arb_start(),
        lambda_pct in 30u32..700,
        seed in any::<u64>(),
        crash_at in 0u64..2000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let n = start.len();
        let mut kmc = KmcChain::from_seed(start, lambda, seed).unwrap();
        kmc.run(crash_at);
        kmc.crash(seed as usize % n);
        kmc.run(5_000);
        prop_assert_eq!(kmc.mass_histogram(), kmc.recomputed_mass_histogram());
        kmc.assert_invariants();
        // The histogram fold is the only path to S, so S is exact too.
        let weights: f64 = kmc
            .mass_histogram()
            .iter()
            .enumerate()
            .map(|(c, &count)| count as f64 * lambda.powi(c as i32 - 5).min(1.0))
            .sum();
        prop_assert!((kmc.total_mass() - weights).abs() < 1e-12 * weights.max(1.0));
    }

    /// KMC checkpointing is invisible: snapshotting at an arbitrary step,
    /// restoring (which rebuilds the mass table from the configuration),
    /// and continuing produces the identical trajectory to an uninterrupted
    /// run — the canonical sorted-bucket form makes the rebuilt table
    /// sample identically.
    #[test]
    fn kmc_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..3000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = KmcChain::from_seed(start.clone(), lambda, seed).unwrap();
        let mut interrupted = KmcChain::from_seed(start, lambda, seed).unwrap();
        interrupted.run(split);
        let mut resumed = KmcChain::restore(&interrupted.snapshot()).unwrap();
        full.run(split + 1_500);
        resumed.run(1_500);
        prop_assert_eq!(full.steps(), resumed.steps());
        prop_assert_eq!(full.counts(), resumed.counts());
        prop_assert_eq!(full.system().positions(), resumed.system().positions());
    }

    /// Every move the KMC sampler executes is structurally valid under the
    /// paper's conditions: its mass table can only hold pairs passing the
    /// five-neighbor rule and Properties 1/2, so the configuration obeys the
    /// same invariants as the naive chain's (connectivity per Lemma 3.1).
    #[test]
    fn kmc_preserves_chain_invariants(start in arb_start(), seed in any::<u64>()) {
        let n = start.len();
        let mut kmc = KmcChain::from_seed(start, 3.0, seed).unwrap();
        kmc.set_validation(true);
        kmc.run(10_000);
        prop_assert!(kmc.system().is_connected());
        prop_assert_eq!(kmc.system().len(), n);
        kmc.system().assert_invariants();
        let p = kmc.perimeter();
        prop_assert!(p >= metrics::pmin(n));
    }

    /// The same for the local runner: snapshot → restore → continue equals
    /// an uninterrupted run, down to the simulated clock's exact bits and
    /// the configuration's canonical form.
    #[test]
    fn local_snapshot_restore_matches_uninterrupted_run(
        start in arb_start(),
        lambda_pct in 50u32..600,
        seed in any::<u64>(),
        split in 0u64..2000,
    ) {
        let lambda = lambda_pct as f64 / 100.0;
        let mut full = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        let mut interrupted = LocalRunner::from_seed(&start, lambda, seed).unwrap();
        interrupted.run_activations(split);
        let mut resumed = LocalRunner::restore(&interrupted.snapshot()).unwrap();
        resumed.assert_invariants();
        full.run_activations(split + 1_000);
        resumed.run_activations(1_000);
        prop_assert_eq!(full.activations(), resumed.activations());
        prop_assert_eq!(full.moves_completed(), resumed.moves_completed());
        prop_assert_eq!(full.rounds(), resumed.rounds());
        prop_assert!(full.time().to_bits() == resumed.time().to_bits());
        prop_assert_eq!(
            full.tail_system().canonical_key(),
            resumed.tail_system().canonical_key()
        );
    }
}
